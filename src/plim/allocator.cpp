#include "plim/allocator.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "util/enum_names.hpp"
#include "util/error.hpp"

namespace rlim::plim {

namespace {

constexpr util::EnumTable kAllocPolicyNames{
    std::string_view("allocation policy"),
    std::array{
        util::EnumName<AllocPolicy>{AllocPolicy::Lifo, "lifo"},
        util::EnumName<AllocPolicy>{AllocPolicy::Fifo, "fifo"},
        util::EnumName<AllocPolicy>{AllocPolicy::RoundRobin, "round-robin"},
        util::EnumName<AllocPolicy>{AllocPolicy::MinWrite, "min-write"},
        // Registry-key spellings accepted as parse aliases.
        util::EnumName<AllocPolicy>{AllocPolicy::RoundRobin, "round_robin"},
        util::EnumName<AllocPolicy>{AllocPolicy::MinWrite, "min_write"},
    }};

/// Most recently freed first — maximizes reuse locality, and wear.
class LifoAllocator final : public Allocator {
public:
  void push(Cell cell, std::uint64_t) override { queue_.push_back(cell); }
  std::optional<Cell> pop() override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const auto cell = queue_.back();
    queue_.pop_back();
    return cell;
  }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

private:
  std::deque<Cell> queue_;
};

/// Oldest freed first.
class FifoAllocator final : public Allocator {
public:
  void push(Cell cell, std::uint64_t) override { queue_.push_back(cell); }
  std::optional<Cell> pop() override {
    if (queue_.empty()) {
      return std::nullopt;
    }
    const auto cell = queue_.front();
    queue_.pop_front();
    return cell;
  }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

private:
  std::deque<Cell> queue_;
};

/// Cycle through free cells by index: the cursor follows the last allocation.
class RoundRobinAllocator final : public Allocator {
public:
  void push(Cell cell, std::uint64_t) override { by_index_.insert(cell); }
  std::optional<Cell> pop() override {
    if (by_index_.empty()) {
      return std::nullopt;
    }
    auto it = by_index_.lower_bound(cursor_);
    if (it == by_index_.end()) {
      it = by_index_.begin();  // wrap around
    }
    const auto cell = *it;
    by_index_.erase(it);
    cursor_ = cell + 1;
    return cell;
  }
  [[nodiscard]] std::size_t size() const override { return by_index_.size(); }

private:
  std::set<Cell> by_index_;
  Cell cursor_ = 0;
};

/// The paper's minimum write count strategy: least-written free cell first.
/// Counts cannot change while a cell is free, so the ordering captured at
/// push time stays valid without rebalancing.
class MinWriteAllocator final : public Allocator {
public:
  void push(Cell cell, std::uint64_t writes) override {
    by_writes_.emplace(writes, cell);
  }
  std::optional<Cell> pop() override {
    if (by_writes_.empty()) {
      return std::nullopt;
    }
    const auto cell = by_writes_.begin()->second;
    by_writes_.erase(by_writes_.begin());
    return cell;
  }
  [[nodiscard]] std::size_t size() const override { return by_writes_.size(); }

private:
  std::set<std::pair<std::uint64_t, Cell>> by_writes_;
};

/// Start-Gap-inspired rotation (Qureshi et al., MICRO 2009; modeled at the
/// memory level in core/startgap.hpp): allocations are served from a roving
/// start pointer that advances once every `interval` allocations — on a
/// fixed schedule, unlike round_robin's allocation-following cursor — so
/// reuse pressure slowly rotates across the whole cell array.
class StartGapAllocator final : public Allocator {
public:
  explicit StartGapAllocator(std::uint64_t interval) : interval_(interval) {}

  void push(Cell cell, std::uint64_t) override {
    max_cell_ = std::max(max_cell_, cell);
    free_.insert(cell);
  }

  std::optional<Cell> pop() override {
    if (free_.empty()) {
      return std::nullopt;
    }
    auto it = free_.lower_bound(start_);
    if (it == free_.end()) {
      it = free_.begin();  // wrap around
    }
    const auto cell = *it;
    free_.erase(it);
    if (++allocations_ % interval_ == 0) {
      ++start_;  // the gap roves one slot
      if (start_ > max_cell_) {
        start_ = 0;
      }
    }
    return cell;
  }

  [[nodiscard]] std::size_t size() const override { return free_.size(); }

private:
  std::uint64_t interval_;
  std::uint64_t allocations_ = 0;
  Cell start_ = 0;
  Cell max_cell_ = 0;
  std::set<Cell> free_;
};

}  // namespace

std::string to_string(AllocPolicy policy) {
  return std::string(kAllocPolicyNames.name(policy));
}

AllocPolicy parse_alloc_policy(std::string_view name) {
  return kAllocPolicyNames.parse(name);
}

util::Registry<AllocatorFactory>& allocators() {
  static auto* registry = [] {
    auto* reg = new util::Registry<AllocatorFactory>("allocation policy");
    reg->add({"lifo", "most recently freed first (the naive baseline)", {}},
             [](const util::Params&) -> AllocatorPtr {
               return std::make_unique<LifoAllocator>();
             });
    reg->add({"fifo", "oldest freed first", {}},
             [](const util::Params&) -> AllocatorPtr {
               return std::make_unique<FifoAllocator>();
             });
    reg->add({"round_robin", "cycle through free cells by index", {}},
             [](const util::Params&) -> AllocatorPtr {
               return std::make_unique<RoundRobinAllocator>();
             });
    reg->add({"min_write",
              "the paper's minimum write count strategy: least-written free "
              "cell first",
              {}},
             [](const util::Params&) -> AllocatorPtr {
               return std::make_unique<MinWriteAllocator>();
             });
    reg->add({"start_gap",
              "Start-Gap-style rotation [8]: roving start pointer advances "
              "every `interval` allocations",
              {{"interval", "16", "allocations between start advances"}}},
             [](const util::Params& params) -> AllocatorPtr {
               const auto interval = util::param_u64(params, "interval");
               require(interval >= 1,
                       "allocation policy 'start_gap': interval must be >= 1");
               return std::make_unique<StartGapAllocator>(interval);
             });
    return reg;
  }();
  return *registry;
}

AllocatorPtr make_allocator(const util::PolicySpec& spec) {
  return allocators().make(spec);
}

AllocatorPtr make_allocator(AllocPolicy policy) {
  return make_allocator(util::PolicySpec{std::string(allocation_key(policy)), {}});
}

std::string_view allocation_key(AllocPolicy policy) {
  switch (policy) {
    case AllocPolicy::Lifo: return "lifo";
    case AllocPolicy::Fifo: return "fifo";
    case AllocPolicy::RoundRobin: return "round_robin";
    case AllocPolicy::MinWrite: return "min_write";
  }
  throw Error("allocation_key: unknown policy");
}

CellAllocator::CellAllocator(Options options)
    : CellAllocator(make_allocator(options.policy), options.max_writes) {}

CellAllocator::CellAllocator(AllocatorPtr policy,
                             std::optional<std::uint64_t> max_writes)
    : max_writes_(max_writes), free_list_(std::move(policy)) {
  require(free_list_ != nullptr, "CellAllocator: null allocation policy");
  if (max_writes_) {
    // The copy idioms need up to 3 writes on one fresh cell; smaller caps
    // would make compilation infeasible.
    require(*max_writes_ >= 3, "CellAllocator: max_writes must be at least 3");
  }
}

CellAllocator::~CellAllocator() = default;
CellAllocator::CellAllocator(CellAllocator&&) noexcept = default;
CellAllocator& CellAllocator::operator=(CellAllocator&&) noexcept = default;

Cell CellAllocator::add_live_cell() {
  const auto cell = static_cast<Cell>(writes_.size());
  writes_.push_back(0);
  quarantined_.push_back(false);
  return cell;
}

bool CellAllocator::has_headroom(Cell cell, std::uint64_t headroom) const {
  if (!max_writes_) {
    return true;
  }
  return writes_[cell] + headroom <= *max_writes_;
}

Cell CellAllocator::acquire(std::uint64_t headroom) {
  // Pop until a cell with sufficient headroom appears; set rejects aside and
  // restore them afterwards (free cells always satisfy headroom 1 by the
  // quarantine invariant, but multi-write idioms may need more).
  std::vector<Cell> rejected;
  std::optional<Cell> found;
  while (const auto cell = free_list_->pop()) {
    if (has_headroom(*cell, headroom)) {
      found = cell;
      break;
    }
    rejected.push_back(*cell);
  }
  for (const auto cell : rejected) {
    free_list_->push(cell, writes_[cell]);
  }
  if (found) {
    return *found;
  }
  return add_live_cell();  // grow the array (+1 to the paper's #R)
}

void CellAllocator::release(Cell cell) {
  require(cell < writes_.size(), "CellAllocator::release: unknown cell");
  if (quarantined_[cell]) {
    return;  // retired for good — the maximum write count strategy
  }
  free_list_->push(cell, writes_[cell]);
}

void CellAllocator::note_write(Cell cell) {
  require(cell < writes_.size(), "CellAllocator::note_write: unknown cell");
  ++writes_[cell];
  if (max_writes_ && writes_[cell] >= *max_writes_) {
    quarantined_[cell] = true;
  }
}

bool CellAllocator::writable(Cell cell) const {
  require(cell < writes_.size(), "CellAllocator::writable: unknown cell");
  return has_headroom(cell, 1);
}

std::uint64_t CellAllocator::write_count(Cell cell) const {
  require(cell < writes_.size(), "CellAllocator::write_count: unknown cell");
  return writes_[cell];
}

std::vector<std::uint64_t> CellAllocator::write_counts() const { return writes_; }

Cell CellAllocator::num_cells() const { return static_cast<Cell>(writes_.size()); }

std::size_t CellAllocator::free_count() const { return free_list_->size(); }

std::size_t CellAllocator::quarantined_count() const {
  std::size_t count = 0;
  for (const auto flag : quarantined_) {
    if (flag) {
      ++count;
    }
  }
  return count;
}

}  // namespace rlim::plim
