#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "plim/rram_array.hpp"
#include "util/rng.hpp"

namespace rlim::fault {

/// plim::RramArray with a seeded fault overlay: manufacturing and
/// wear-induced stuck-at cells, per-read resistance-drift disturbances,
/// cycle-to-cycle write variability, mixed-mode region profiles, and
/// optional spare-cell remapping.
///
/// The array exposes `num_cells` *logical* cells — the indices the PLiM
/// program addresses — backed by `num_cells + profile.spares` physical cells
/// in the base class. `forward_` maps logical to physical; remapping
/// redirects a logical cell to a healthy spare. All overrides translate the
/// index once and then work on protected base state directly (never back
/// through the virtual public API, which expects logical indices).
///
/// Determinism: all fault draws come from one Xoshiro256 stream seeded by
/// the constructor, and the endurance-variability draw uses a decorrelated
/// seed derived from the same value — two arrays built with equal arguments
/// behave identically.
class FaultArray final : public plim::RramArray {
 public:
  /// `memory_cells` marks the memory-mode region (typically the program's PI
  /// cells); empty means every cell is logic-mode. When non-empty its size
  /// must equal `num_cells`.
  FaultArray(plim::Cell num_cells, const FaultProfile& profile,
             std::uint64_t seed, std::vector<bool> memory_cells = {});

  [[nodiscard]] std::uint64_t read(plim::Cell cell) const override;
  void write(plim::Cell cell, std::uint64_t value) override;
  void preload(plim::Cell cell, std::uint64_t value) override;
  [[nodiscard]] bool is_failed(plim::Cell cell) const override;
  /// Physical cells that are stuck (manufacturing, wear-induced) or have
  /// exhausted their endurance — unused healthy spares do not count.
  [[nodiscard]] std::size_t failed_cell_count() const override;
  void reset_values() override;

  /// Logical address space (base size() reports physical cells incl. spares).
  [[nodiscard]] plim::Cell logical_size() const { return logical_; }

  [[nodiscard]] bool is_stuck(plim::Cell cell) const;
  [[nodiscard]] std::size_t stuck_cell_count() const;
  [[nodiscard]] std::uint64_t remapped_count() const { return remapped_; }
  [[nodiscard]] std::uint64_t dropped_writes() const { return dropped_; }
  [[nodiscard]] std::uint64_t disturbed_reads() const { return disturbed_; }

 private:
  void check_logical(plim::Cell cell) const;
  [[nodiscard]] const RegionProfile& region_of(plim::Cell cell) const;
  /// Redirects `cell` to the next healthy spare; false when none remain.
  bool try_remap(plim::Cell cell);

  FaultProfile profile_;
  plim::Cell logical_;
  std::vector<bool> memory_cell_;
  std::vector<std::uint8_t> stuck_;   // physical index; value latched in state
  std::vector<plim::Cell> forward_;   // logical -> physical
  plim::Cell next_spare_;
  mutable util::Xoshiro256 rng_;      // mutable: read disturbance draws
  std::uint64_t remapped_ = 0;
  std::uint64_t dropped_ = 0;
  mutable std::uint64_t disturbed_ = 0;
};

}  // namespace rlim::fault
