#include "fault/array.hpp"

#include "util/error.hpp"

namespace rlim::fault {

namespace {

// Distinct salts keep the endurance-variability stream and the fault stream
// decorrelated even though both derive from the constructor seed.
constexpr std::uint64_t kVariationSalt = 0x7661726961746eULL;  // "variatn"
constexpr std::uint64_t kFaultSalt = 0x6661756c74ULL;          // "fault"

plim::RramConfig base_config(const FaultProfile& profile, std::uint64_t seed) {
  return plim::RramConfig{
      .endurance_limit = profile.endurance,
      .endurance_sigma = profile.sigma,
      .variation_seed = util::mix_seed(seed, kVariationSalt),
  };
}

}  // namespace

FaultArray::FaultArray(plim::Cell num_cells, const FaultProfile& profile,
                       std::uint64_t seed, std::vector<bool> memory_cells)
    : RramArray(num_cells + profile.spares, base_config(profile, seed)),
      profile_(profile),
      logical_(num_cells),
      memory_cell_(std::move(memory_cells)),
      stuck_(num_cells + profile.spares, 0),
      forward_(num_cells),
      next_spare_(num_cells),
      rng_(util::mix_seed(seed, kFaultSalt)) {
  require(memory_cell_.empty() || memory_cell_.size() == num_cells,
          "FaultArray: memory_cells mask must cover every logical cell");
  for (plim::Cell cell = 0; cell < logical_; ++cell) {
    forward_[cell] = cell;
  }
  // Manufacturing defects: each physical cell is stuck at a random value with
  // its region's probability. Spares count as logic-mode — a spare only ever
  // substitutes for a cell the program writes.
  const auto physical = size();
  for (plim::Cell cell = 0; cell < physical; ++cell) {
    const auto& region = cell < logical_ ? region_of(cell) : profile_.logic;
    if (region.stuck_rate > 0.0 && rng_.uniform01() < region.stuck_rate) {
      stuck_[cell] = 1;
      state(cell).value = (rng_() & 1) != 0 ? ~0ULL : 0ULL;
    }
  }
}

void FaultArray::check_logical(plim::Cell cell) const {
  require(cell < logical_, "FaultArray: logical cell index out of range");
}

const RegionProfile& FaultArray::region_of(plim::Cell cell) const {
  if (!memory_cell_.empty() && memory_cell_[cell]) {
    return profile_.memory;
  }
  return profile_.logic;
}

bool FaultArray::try_remap(plim::Cell cell) {
  if (profile_.repair != Repair::Remap) {
    return false;
  }
  const auto physical = size();
  while (next_spare_ < physical) {
    const auto spare = next_spare_++;
    if (stuck_[spare] == 0 && !hard_failed(state(spare))) {
      forward_[cell] = spare;
      ++remapped_;
      return true;
    }
  }
  return false;
}

std::uint64_t FaultArray::read(plim::Cell cell) const {
  check_logical(cell);
  const auto phys = forward_[cell];
  const auto& st = state(phys);
  if (stuck_[phys] != 0) {
    return st.value;  // stuck cells hold their value; drift cannot move them
  }
  const auto& region = region_of(cell);
  if (region.drift_rate > 0.0 && rng_.uniform01() < region.drift_rate) {
    // Resistance drift flips one of the 64 simulation lanes, persistently:
    // the disturbed value is what every later read returns.
    const auto flipped = st.value ^ (1ULL << rng_.below(64));
    const_cast<FaultArray*>(this)->state(phys).value = flipped;
    ++disturbed_;
    return flipped;
  }
  return st.value;
}

void FaultArray::write(plim::Cell cell, std::uint64_t value) {
  check_logical(cell);
  auto phys = forward_[cell];
  if (stuck_[phys] != 0 || hard_failed(state(phys))) {
    if (!try_remap(cell)) {
      ++dropped_;
      return;
    }
    phys = forward_[cell];
  }
  auto& st = state(phys);
  const auto& region = region_of(cell);
  st.writes += region.wear_per_write;
  // Cycle-to-cycle variability: the pulse wears the cell but fails to latch.
  if (region.write_fail_rate > 0.0 && rng_.uniform01() < region.write_fail_rate) {
    return;
  }
  st.value = value;
  if (region.wear_stuck_rate > 0.0 && rng_.uniform01() < region.wear_stuck_rate) {
    stuck_[phys] = 1;  // early wear-out: stuck at the value just written
  }
}

void FaultArray::preload(plim::Cell cell, std::uint64_t value) {
  check_logical(cell);
  auto phys = forward_[cell];
  if (stuck_[phys] != 0 || hard_failed(state(phys))) {
    // The memory controller repairs resident data the same way it repairs
    // program writes; without repair the preload is dropped.
    if (!try_remap(cell)) {
      ++dropped_;
      return;
    }
    phys = forward_[cell];
  }
  state(phys).value = value;  // uncounted: data already resident
}

bool FaultArray::is_failed(plim::Cell cell) const {
  check_logical(cell);
  const auto phys = forward_[cell];
  return stuck_[phys] != 0 || hard_failed(state(phys));
}

std::size_t FaultArray::failed_cell_count() const {
  std::size_t failed = 0;
  const auto physical = size();
  for (plim::Cell cell = 0; cell < physical; ++cell) {
    if (stuck_[cell] != 0 || hard_failed(state(cell))) {
      ++failed;
    }
  }
  return failed;
}

void FaultArray::reset_values() {
  const auto physical = size();
  for (plim::Cell cell = 0; cell < physical; ++cell) {
    if (stuck_[cell] != 0 || hard_failed(state(cell))) {
      continue;  // stuck cells keep their value across executions
    }
    state(cell).value = 0;
  }
}

bool FaultArray::is_stuck(plim::Cell cell) const {
  check_logical(cell);
  return stuck_[forward_[cell]] != 0;
}

std::size_t FaultArray::stuck_cell_count() const {
  std::size_t stuck = 0;
  for (const auto flag : stuck_) {
    stuck += flag != 0 ? 1 : 0;
  }
  return stuck;
}

}  // namespace rlim::fault
