#pragma once

#include <cstdint>

#include "fault/fault.hpp"
#include "mig/mig.hpp"
#include "plim/program.hpp"

namespace rlim::fault {

/// Summary of a Monte-Carlo lifetime sweep: `trials` independently seeded
/// FaultArrays each execute the program until its outputs first diverge from
/// the reference MIG (or the `runs_cap` censoring bound is hit). Lifetime is
/// the number of *correct* executions before the first wrong one.
struct LifetimeDistribution {
  std::uint32_t trials = 0;
  std::uint64_t runs_cap = 0;  ///< per-trial execution cap (censoring bound)
  std::uint32_t censored = 0;  ///< trials still correct at the cap

  std::uint64_t lifetime_min = 0;
  std::uint64_t lifetime_p50 = 0;
  std::uint64_t lifetime_p99 = 0;
  std::uint64_t lifetime_max = 0;
  double lifetime_mean = 0.0;

  std::uint64_t failed_cells_min = 0;   ///< stuck + endurance-exhausted, at end
  std::uint64_t failed_cells_max = 0;
  double failed_cells_mean = 0.0;

  std::uint64_t remapped_total = 0;  ///< spare-cell remaps across all trials
  std::uint64_t dropped_writes = 0;  ///< writes lost to dead cells, all trials

  bool operator==(const LifetimeDistribution&) const = default;
};

/// Runs the sweep. The program's PI cells form the memory-mode region
/// (mixed-mode profiles treat them gently); everything else is logic-mode.
/// Per-trial array and input streams derive from `spec.seed` via
/// util::mix_seed, so results are deterministic in (program, mig, spec) and
/// trials never alias across nearby base seeds.
///
/// When the caller is already a sched::Scheduler worker (a compile job on
/// flow::Service), the trials fork as high-priority child tasks and run in
/// parallel across the pool — aggregation stays in trial order, so the
/// distribution is byte-identical to a serial run whatever the worker count.
[[nodiscard]] LifetimeDistribution run_sweep(const plim::Program& program,
                                             const mig::Mig& reference,
                                             const SweepSpec& spec);

}  // namespace rlim::fault
