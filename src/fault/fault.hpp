#pragma once

#include <cstdint>
#include <functional>

#include "util/registry.hpp"
#include "util/spec.hpp"

/// `rlim::fault` — seeded fault-injection and variability simulation over the
/// PLiM crossbar, the scenario layer the paper's deterministic single-mode
/// endurance results lack. Grounded in "Addressing Resiliency of In-Memory
/// Floating Point Computation" (arXiv:2011.00648, stuck-at faults + repair)
/// and the mixed-mode (memory-mode vs logic-mode) region partitioning of
/// arXiv:2506.19063; see PAPERS.md.
///
/// Fault scenarios are registry-expressible through the same PolicySpec
/// grammar as every other pipeline policy (`fault=stuck:rate=1e-4:seed=7`),
/// so core::PipelineConfig::canonical_key(), the two-level pipeline cache,
/// the disk store, the wire format, and the cluster CLI all pick up fault
/// sweeps without any new plumbing.
namespace rlim::fault {

/// How a trial repairs cells it detects as unwritable.
enum class Repair : std::uint8_t {
  None,   ///< failures stand; writes to dead cells are dropped
  Remap,  ///< spare-cell remapping: redirect the logical cell to a spare
};

/// Fault rates of one crossbar region. Mixed-mode execution partitions the
/// array into memory-mode (data-resident, gentle pulses) and logic-mode
/// (IMPLY compute, aggressive pulses) regions with distinct profiles;
/// single-mode models use one profile for every cell.
struct RegionProfile {
  double stuck_rate = 0.0;       ///< manufacturing stuck-at probability per cell
  double wear_stuck_rate = 0.0;  ///< per-write early wear-out probability
  double drift_rate = 0.0;       ///< per-read resistance-drift disturb probability
  double write_fail_rate = 0.0;  ///< per-write cycle-to-cycle latch-failure probability
  unsigned wear_per_write = 1;   ///< wear units one counted write costs

  bool operator==(const RegionProfile&) const = default;
};

/// Complete fault model of one simulated array.
struct FaultProfile {
  RegionProfile logic;   ///< profile of logic-mode cells (the default region)
  RegionProfile memory;  ///< profile of memory-mode cells (PI-resident data)
  std::uint64_t endurance = 0;  ///< per-cell endurance limit (0 = unlimited)
  double sigma = 0.0;           ///< log-normal endurance variability
  Repair repair = Repair::None;
  std::uint32_t spares = 0;  ///< spare cells available for remapping

  bool operator==(const FaultProfile&) const = default;
};

/// One Monte-Carlo lifetime sweep request: the fault model plus trial
/// bookkeeping. `enabled` is false only for the `none` model (the default
/// configuration), which runs no sweep at all.
struct SweepSpec {
  FaultProfile profile;
  std::uint32_t trials = 3;  ///< independent seeded arrays per job
  std::uint64_t runs = 500;  ///< executions cap per trial (censoring bound)
  std::uint64_t seed = 1;    ///< base seed; per-trial seeds derive via util::mix_seed
  bool enabled = false;

  bool operator==(const SweepSpec&) const = default;
};

using SweepFactory = std::function<SweepSpec(const util::Params&)>;

/// Registry of fault models (the `fault=` dimension of the config grammar).
/// Built-ins: `none`, `stuck` (manufacturing + wear-induced stuck-at cells,
/// optional spare-cell remapping), `drift` (per-read resistance-drift
/// disturbance), `variation` (cycle-to-cycle write variability + log-normal
/// endurance spread), `mixed` (memory-mode vs logic-mode region partitioning
/// with distinct stuck rates and wear multipliers).
[[nodiscard]] util::Registry<SweepFactory>& models();

/// Normalizes `spec` against models() and constructs the sweep request.
[[nodiscard]] SweepSpec make_sweep(const util::PolicySpec& spec);

/// True when `spec` names a model that actually injects faults (anything but
/// `none`) — the cheap gate config consumers use before paying for a sweep.
[[nodiscard]] bool active(const util::PolicySpec& spec);

/// Idempotent, thread-safe one-time registration of everything the fault
/// library contributes to the shared registries: the fault models above and
/// the repair/remap allocator decorators (`retire`, `spare`) that extend
/// plim::allocators(). core::PipelineConfig calls this before validating
/// specs, so any code path that parses a config sees the full registry.
void ensure_registered();

}  // namespace rlim::fault
