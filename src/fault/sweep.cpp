#include "fault/sweep.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "fault/array.hpp"
#include "mig/simulate.hpp"
#include "plim/controller.hpp"
#include "sched/sched.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::fault {

namespace {

// Separates the per-trial input stream from the per-trial array seed.
constexpr std::uint64_t kInputSalt = 0x696e70757473ULL;  // "inputs"

/// Nearest-rank percentile over a sorted sample (interpolation-free so the
/// reported value is always an observed lifetime).
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned p) {
  const auto n = sorted.size();
  return sorted[(p * (n - 1) + 50) / 100];
}

/// Everything one trial contributes to the distribution. Trials write into
/// pre-sized index-addressed slots, so the parallel path aggregates in trial
/// order afterward and the result stays byte-identical to a serial run.
struct TrialOutcome {
  std::uint64_t lifetime = 0;
  std::uint64_t failed_cells = 0;
  std::uint64_t remapped = 0;
  std::uint64_t dropped_writes = 0;
};

TrialOutcome run_trial(const plim::Program& program, const mig::Mig& reference,
                       const SweepSpec& spec,
                       const std::vector<bool>& memory_cells,
                       std::uint32_t trial) {
  FaultArray array(program.num_cells(), spec.profile,
                   util::mix_seed(spec.seed, trial), memory_cells);
  util::Xoshiro256 inputs(
      util::mix_seed(util::mix_seed(spec.seed, kInputSalt), trial));

  std::vector<std::uint64_t> pi_values(program.pi_cells().size());
  std::uint64_t correct_runs = 0;
  for (; correct_runs < spec.runs; ++correct_runs) {
    for (auto& word : pi_values) {
      word = inputs();
    }
    const auto got = plim::evaluate(program, pi_values, &array);
    if (got != mig::simulate(reference, pi_values)) {
      break;
    }
  }

  TrialOutcome outcome;
  outcome.lifetime = correct_runs;
  outcome.failed_cells = static_cast<std::uint64_t>(array.failed_cell_count());
  outcome.remapped = array.remapped_count();
  outcome.dropped_writes = array.dropped_writes();
  return outcome;
}

}  // namespace

LifetimeDistribution run_sweep(const plim::Program& program,
                               const mig::Mig& reference, const SweepSpec& spec) {
  require(spec.enabled, "run_sweep: spec does not request a sweep (fault=none)");
  require(program.pi_cells().size() == reference.num_pis() &&
              program.po_cells().size() == reference.num_pos(),
          "run_sweep: program and reference MIG disagree on the PI/PO profile");

  // Memory-mode region: the PI-resident cells. Everything the program writes
  // is logic-mode.
  std::vector<bool> memory_cells(program.num_cells(), false);
  for (const auto cell : program.pi_cells()) {
    memory_cells[cell] = true;
  }

  LifetimeDistribution dist;
  dist.trials = spec.trials;
  dist.runs_cap = spec.runs;

  // Trials are embarrassingly parallel and fully seeded (array and input
  // streams derive from (spec.seed, trial)), so when this sweep already
  // runs on a scheduler worker — a compile job inside flow::Service — it
  // forks the trials as child tasks and helps execute them. Each trial
  // writes its own pre-sized slot; aggregation below walks the slots in
  // trial order, so serial and parallel sweeps produce identical bytes.
  std::vector<TrialOutcome> outcomes(spec.trials);
  auto* scheduler = sched::Scheduler::current();
  if (scheduler != nullptr && spec.trials > 1) {
    std::vector<std::function<void()>> children;
    children.reserve(spec.trials);
    for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
      children.push_back([&, trial] {
        outcomes[trial] =
            run_trial(program, reference, spec, memory_cells, trial);
      });
    }
    // High: these are subtasks of a job someone is already waiting on —
    // they must not queue behind freshly arrived external work.
    scheduler->run_children(std::move(children), sched::Priority::High);
  } else {
    for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
      outcomes[trial] =
          run_trial(program, reference, spec, memory_cells, trial);
    }
  }

  std::vector<std::uint64_t> lifetimes;
  lifetimes.reserve(spec.trials);
  std::uint64_t failed_sum = 0;
  double lifetime_sum = 0.0;
  for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
    const auto& outcome = outcomes[trial];
    if (outcome.lifetime == spec.runs) {
      ++dist.censored;
    }
    lifetimes.push_back(outcome.lifetime);
    lifetime_sum += static_cast<double>(outcome.lifetime);

    failed_sum += outcome.failed_cells;
    if (trial == 0) {
      dist.failed_cells_min = outcome.failed_cells;
      dist.failed_cells_max = outcome.failed_cells;
    } else {
      dist.failed_cells_min =
          std::min(dist.failed_cells_min, outcome.failed_cells);
      dist.failed_cells_max =
          std::max(dist.failed_cells_max, outcome.failed_cells);
    }
    dist.remapped_total += outcome.remapped;
    dist.dropped_writes += outcome.dropped_writes;
  }

  std::sort(lifetimes.begin(), lifetimes.end());
  dist.lifetime_min = lifetimes.front();
  dist.lifetime_p50 = percentile(lifetimes, 50);
  dist.lifetime_p99 = percentile(lifetimes, 99);
  dist.lifetime_max = lifetimes.back();
  dist.lifetime_mean = lifetime_sum / static_cast<double>(spec.trials);
  dist.failed_cells_mean =
      static_cast<double>(failed_sum) / static_cast<double>(spec.trials);
  return dist;
}

}  // namespace rlim::fault
