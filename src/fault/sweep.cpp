#include "fault/sweep.hpp"

#include <algorithm>

#include "fault/array.hpp"
#include "mig/simulate.hpp"
#include "plim/controller.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::fault {

namespace {

// Separates the per-trial input stream from the per-trial array seed.
constexpr std::uint64_t kInputSalt = 0x696e70757473ULL;  // "inputs"

/// Nearest-rank percentile over a sorted sample (interpolation-free so the
/// reported value is always an observed lifetime).
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned p) {
  const auto n = sorted.size();
  return sorted[(p * (n - 1) + 50) / 100];
}

}  // namespace

LifetimeDistribution run_sweep(const plim::Program& program,
                               const mig::Mig& reference, const SweepSpec& spec) {
  require(spec.enabled, "run_sweep: spec does not request a sweep (fault=none)");
  require(program.pi_cells().size() == reference.num_pis() &&
              program.po_cells().size() == reference.num_pos(),
          "run_sweep: program and reference MIG disagree on the PI/PO profile");

  // Memory-mode region: the PI-resident cells. Everything the program writes
  // is logic-mode.
  std::vector<bool> memory_cells(program.num_cells(), false);
  for (const auto cell : program.pi_cells()) {
    memory_cells[cell] = true;
  }

  LifetimeDistribution dist;
  dist.trials = spec.trials;
  dist.runs_cap = spec.runs;

  std::vector<std::uint64_t> lifetimes;
  lifetimes.reserve(spec.trials);
  std::uint64_t failed_sum = 0;
  double lifetime_sum = 0.0;

  std::vector<std::uint64_t> pi_values(program.pi_cells().size());
  for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
    FaultArray array(program.num_cells(), spec.profile,
                     util::mix_seed(spec.seed, trial), memory_cells);
    util::Xoshiro256 inputs(
        util::mix_seed(util::mix_seed(spec.seed, kInputSalt), trial));

    std::uint64_t correct_runs = 0;
    for (; correct_runs < spec.runs; ++correct_runs) {
      for (auto& word : pi_values) {
        word = inputs();
      }
      const auto got = plim::evaluate(program, pi_values, &array);
      if (got != mig::simulate(reference, pi_values)) {
        break;
      }
    }
    if (correct_runs == spec.runs) {
      ++dist.censored;
    }
    lifetimes.push_back(correct_runs);
    lifetime_sum += static_cast<double>(correct_runs);

    const auto failed = static_cast<std::uint64_t>(array.failed_cell_count());
    failed_sum += failed;
    if (trial == 0) {
      dist.failed_cells_min = failed;
      dist.failed_cells_max = failed;
    } else {
      dist.failed_cells_min = std::min(dist.failed_cells_min, failed);
      dist.failed_cells_max = std::max(dist.failed_cells_max, failed);
    }
    dist.remapped_total += array.remapped_count();
    dist.dropped_writes += array.dropped_writes();
  }

  std::sort(lifetimes.begin(), lifetimes.end());
  dist.lifetime_min = lifetimes.front();
  dist.lifetime_p50 = percentile(lifetimes, 50);
  dist.lifetime_p99 = percentile(lifetimes, 99);
  dist.lifetime_max = lifetimes.back();
  dist.lifetime_mean = lifetime_sum / static_cast<double>(spec.trials);
  dist.failed_cells_mean =
      static_cast<double>(failed_sum) / static_cast<double>(spec.trials);
  return dist;
}

}  // namespace rlim::fault
