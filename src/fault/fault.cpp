#include "fault/fault.hpp"

#include <mutex>

#include "plim/allocator.hpp"
#include "util/error.hpp"

namespace rlim::fault {

namespace {

/// Trial bookkeeping every fault model shares. Declared last in each model's
/// parameter list so model-specific knobs lead the `rlim policies` listing.
std::vector<util::ParamInfo> with_common(std::vector<util::ParamInfo> params) {
  params.push_back({"endurance", "400", "per-cell endurance limit (0 = unlimited)"});
  params.push_back({"sigma", "0", "log-normal endurance variability (sigma >= 0)"});
  params.push_back({"seed", "1", "Monte-Carlo base seed"});
  params.push_back({"trials", "3", "independent seeded arrays per job"});
  params.push_back({"runs", "500", "executions cap per trial (censoring bound)"});
  return params;
}

SweepSpec common_sweep(const util::Params& params) {
  SweepSpec spec;
  spec.enabled = true;
  spec.profile.endurance = util::param_u64(params, "endurance");
  spec.profile.sigma = util::param_double(params, "sigma");
  require(spec.profile.sigma >= 0.0, "fault model: sigma must be non-negative");
  spec.seed = util::param_u64(params, "seed");
  const auto trials = util::param_u64(params, "trials");
  require(trials >= 1 && trials <= 100000,
          "fault model: trials must be in [1, 100000]");
  spec.trials = static_cast<std::uint32_t>(trials);
  spec.runs = util::param_u64(params, "runs");
  require(spec.runs >= 1, "fault model: runs must be at least 1");
  return spec;
}

Repair parse_repair(const util::Params& params) {
  const auto& text = params.at("repair");
  if (text == "none") {
    return Repair::None;
  }
  if (text == "remap") {
    return Repair::Remap;
  }
  throw Error("fault model: repair='" + text + "' (expected none or remap)");
}

void apply_repair(SweepSpec& spec, const util::Params& params) {
  spec.profile.repair = parse_repair(params);
  const auto spares = util::param_u64(params, "spares");
  require(spares <= 4096, "fault model: spares must be at most 4096");
  spec.profile.spares = static_cast<std::uint32_t>(spares);
  require(spec.profile.repair == Repair::None || spec.profile.spares >= 1,
          "fault model: repair=remap needs spares >= 1");
}

void register_models(util::Registry<SweepFactory>& reg) {
  reg.add({"none", "no fault injection (the default)", {}},
          [](const util::Params&) { return SweepSpec{}; });

  reg.add({"stuck",
           "stuck-at cells: manufacturing defects plus wear-induced failures",
           with_common({
               {"rate", "0.0001", "manufacturing stuck-at probability per cell"},
               {"wear_rate", "0", "per-write early wear-out probability"},
               {"repair", "none", "repair policy: none | remap"},
               {"spares", "0", "spare cells reserved for remapping"},
           })},
          [](const util::Params& params) {
            auto spec = common_sweep(params);
            spec.profile.logic.stuck_rate = util::param_probability(params, "rate");
            spec.profile.logic.wear_stuck_rate =
                util::param_probability(params, "wear_rate");
            spec.profile.memory = spec.profile.logic;
            apply_repair(spec, params);
            return spec;
          });

  reg.add({"drift",
           "resistance drift: each read may persistently disturb one pattern lane",
           with_common({
               {"rate", "0.0001", "per-read disturb probability"},
           })},
          [](const util::Params& params) {
            auto spec = common_sweep(params);
            spec.profile.logic.drift_rate = util::param_probability(params, "rate");
            spec.profile.memory = spec.profile.logic;
            return spec;
          });

  reg.add({"variation",
           "cycle-to-cycle write variability: programming pulses that fail to latch",
           with_common({
               {"fail_rate", "0.001", "per-write latch-failure probability"},
           })},
          [](const util::Params& params) {
            auto spec = common_sweep(params);
            spec.profile.logic.write_fail_rate =
                util::param_probability(params, "fail_rate");
            spec.profile.memory = spec.profile.logic;
            return spec;
          });

  reg.add({"mixed",
           "mixed-mode execution: memory-mode (PI-resident) vs logic-mode regions "
           "with distinct stuck rates and wear per write",
           with_common({
               {"mem_rate", "0.00001", "memory-mode manufacturing stuck-at probability"},
               {"logic_rate", "0.0001", "logic-mode manufacturing stuck-at probability"},
               {"logic_wear", "2", "wear units one logic-mode write costs (>= 1)"},
               {"repair", "none", "repair policy: none | remap"},
               {"spares", "0", "spare cells reserved for remapping"},
           })},
          [](const util::Params& params) {
            auto spec = common_sweep(params);
            spec.profile.memory.stuck_rate =
                util::param_probability(params, "mem_rate");
            spec.profile.logic.stuck_rate =
                util::param_probability(params, "logic_rate");
            const auto wear = util::param_u64(params, "logic_wear");
            require(wear >= 1 && wear <= 1000,
                    "fault model: logic_wear must be in [1, 1000]");
            spec.profile.logic.wear_per_write = static_cast<unsigned>(wear);
            apply_repair(spec, params);
            return spec;
          });
}

// --- repair/remap allocator decorators ------------------------------------
//
// Compile-time counterparts of the runtime repair machinery: they shape which
// physical cells the compiler reuses, registered into plim::allocators() so
// any `alloc=` spec can name them (e.g. `alloc=retire:inner=min_write`).

plim::AllocatorPtr make_inner(const util::Params& params) {
  const auto& key = params.at("inner");
  require(key != "retire" && key != "spare",
          "allocation policy: decorators cannot nest (inner='" + key + "')");
  return plim::make_allocator(util::PolicySpec{key, {}});
}

/// Region retirement: a freed cell whose wear has reached `threshold` is
/// dropped from circulation instead of returned to the inner free set.
class RetireAllocator final : public plim::Allocator {
 public:
  RetireAllocator(plim::AllocatorPtr inner, std::uint64_t threshold)
      : inner_(std::move(inner)), threshold_(threshold) {}

  void push(plim::Cell cell, std::uint64_t writes) override {
    if (writes >= threshold_) {
      return;  // retired: the compiler will grow the array instead
    }
    inner_->push(cell, writes);
  }

  std::optional<plim::Cell> pop() override { return inner_->pop(); }

  [[nodiscard]] std::size_t size() const override { return inner_->size(); }

 private:
  plim::AllocatorPtr inner_;
  std::uint64_t threshold_;
};

/// Spare-cell reserve: holds back up to `spares` freed cells as a standby
/// pool served only once the inner free set runs dry — the compile-time
/// analogue of dedicated spare columns.
class SpareAllocator final : public plim::Allocator {
 public:
  SpareAllocator(plim::AllocatorPtr inner, std::uint64_t spares)
      : inner_(std::move(inner)), spares_(spares) {}

  void push(plim::Cell cell, std::uint64_t writes) override {
    if (reserve_.size() < spares_) {
      reserve_.push_back(cell);
      return;
    }
    inner_->push(cell, writes);
  }

  std::optional<plim::Cell> pop() override {
    if (auto cell = inner_->pop()) {
      return cell;
    }
    if (reserve_.empty()) {
      return std::nullopt;
    }
    const auto cell = reserve_.back();
    reserve_.pop_back();
    return cell;
  }

  [[nodiscard]] std::size_t size() const override {
    return inner_->size() + reserve_.size();
  }

 private:
  plim::AllocatorPtr inner_;
  std::vector<plim::Cell> reserve_;
  std::uint64_t spares_;
};

void register_decorators(util::Registry<plim::AllocatorFactory>& reg) {
  reg.add({"retire",
           "decorator: retire freed cells whose wear reached a threshold",
           {
               {"inner", "min_write", "decorated allocation policy"},
               {"threshold", "64", "retire cells with at least this many writes"},
           }},
          [](const util::Params& params) -> plim::AllocatorPtr {
            const auto threshold = util::param_u64(params, "threshold");
            require(threshold >= 1,
                    "allocation policy retire: threshold must be at least 1");
            return std::make_unique<RetireAllocator>(make_inner(params), threshold);
          });

  reg.add({"spare",
           "decorator: hold freed cells in a standby reserve served last",
           {
               {"inner", "min_write", "decorated allocation policy"},
               {"spares", "4", "reserve size in cells"},
           }},
          [](const util::Params& params) -> plim::AllocatorPtr {
            return std::make_unique<SpareAllocator>(
                make_inner(params), util::param_u64(params, "spares"));
          });
}

}  // namespace

util::Registry<SweepFactory>& models() {
  ensure_registered();
  static auto* reg = [] {
    auto* r = new util::Registry<SweepFactory>("fault model");
    register_models(*r);
    return r;
  }();
  return *reg;
}

SweepSpec make_sweep(const util::PolicySpec& spec) { return models().make(spec); }

bool active(const util::PolicySpec& spec) { return spec.key != "none"; }

void ensure_registered() {
  static std::once_flag once;
  std::call_once(once, [] { register_decorators(plim::allocators()); });
}

}  // namespace rlim::fault
