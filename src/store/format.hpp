#pragma once

#include <cstdint>
#include <string_view>

namespace rlim::store {

/// First bytes of every store entry file.
inline constexpr std::string_view kMagic = "RLIM";

/// On-disk format version. Bump whenever any serialized structure changes
/// (Mig, Program, EnduranceReport, entry framing, ...); readers treat any
/// other version as a miss and evict the entry, so sweeps transparently
/// recompute after an upgrade instead of decoding stale bytes.
/// v2: MIG and Program payloads moved to the mmap-friendly sectioned layout
/// (header of counts + bulk little-endian sections), the frame trailer
/// switched to the 8-byte-lane FNV variant, and the MIG fingerprint to the
/// u32-lane variant — v1 entries are evicted and recomputed on first touch.
/// v3: EnduranceReport gained the optional Monte-Carlo fault-sweep block
/// (u8 presence flag + fault::LifetimeDistribution).
/// v4: RewriteStats gained the per-pass telemetry breakdown
/// (count-prefixed list of named PassStats records).
/// v5: no store payload layout changed, but flow::wire v5 (JobSpec
/// priority/deadline, StatsReply scheduler gauges) bumped in lockstep per
/// the shared-version convention — v4 entries are evicted and recomputed
/// on first touch.
inline constexpr std::uint32_t kFormatVersion = 5;

/// What an entry file holds. Part of the content address, so the two cache
/// levels never alias even for equal (fingerprint, key) pairs.
enum class EntryKind : std::uint8_t {
  Rewrite = 1,  ///< rewritten MIG + RewriteStats (cache level 1)
  Program = 2,  ///< prepared MIG + stats + compiled EnduranceReport (level 2)
};

[[nodiscard]] constexpr std::string_view to_string(EntryKind kind) {
  return kind == EntryKind::Rewrite ? "rewrite" : "program";
}

}  // namespace rlim::store
