#include "store/serialize.hpp"

#include <array>
#include <type_traits>

#include "core/config.hpp"
#include "util/error.hpp"

namespace rlim::store {

// ---- mig::Mig --------------------------------------------------------------

namespace {

/// Exact byte size of the sections a header with these counts describes.
/// Computed in 64 bits so hostile counts cannot wrap the validation.
std::uint64_t mig_sections_bytes(std::uint32_t num_pis, std::uint32_t num_gates,
                                 std::uint32_t num_pos,
                                 std::uint32_t pi_pool_bytes,
                                 std::uint32_t po_pool_bytes) {
  return 4ull * num_pis + pi_pool_bytes + 4ull * num_pos + po_pool_bytes +
         12ull * num_gates + 4ull * num_pos;
}

}  // namespace

void encode(util::ByteWriter& out, const mig::Mig& graph) {
  const auto& pi_names = graph.pi_names();
  const auto& po_names = graph.po_names();
  const auto num_pis = graph.num_pis();
  const auto num_gates = graph.num_gates();
  const auto num_pos = graph.num_pos();
  const auto pi_pool_bytes = static_cast<std::uint32_t>(pi_names.pool().size());
  const auto po_pool_bytes = static_cast<std::uint32_t>(po_names.pool().size());
  out.u32(num_pis).u32(num_gates).u32(num_pos);
  out.u32(pi_pool_bytes).u32(po_pool_bytes);
  out.u32(static_cast<std::uint32_t>(mig_sections_bytes(
      num_pis, num_gates, num_pos, pi_pool_bytes, po_pool_bytes)));
  out.u32_array(pi_names.ends().data(), num_pis);
  out.raw(pi_names.pool());
  out.u32_array(po_names.ends().data(), num_pos);
  out.raw(po_names.pool());
  // Signal is a trivially-copyable u32 wrapper (static_asserted in mig.cpp),
  // so the fanin arena and PO list serialize as flat u32 sections.
  out.u32_array(reinterpret_cast<const std::uint32_t*>(
                    graph.gate_fanins().data()),
                3ull * num_gates);
  out.u32_array(reinterpret_cast<const std::uint32_t*>(graph.pos().data()),
                num_pos);
  out.u64(graph.fingerprint());
}

mig::Mig decode_mig(util::ByteReader& in) {
  const auto num_pis = in.u32();
  const auto num_gates = in.u32();
  const auto num_pos = in.u32();
  const auto pi_pool_bytes = in.u32();
  const auto po_pool_bytes = in.u32();
  const auto declared = in.u32();
  const auto expected = mig_sections_bytes(num_pis, num_gates, num_pos,
                                           pi_pool_bytes, po_pool_bytes);
  require(declared == expected,
          "store: MIG section table inconsistent with header counts");
  // Bound every count by the actual bytes present before sizing any arena,
  // so a corrupt header cannot demand a huge allocation.
  require(expected + 8 <= in.remaining(), "store: truncated MIG sections");

  std::vector<std::uint32_t> pi_ends(num_pis);
  in.u32_array(pi_ends.data(), num_pis);
  std::string pi_pool{in.view(pi_pool_bytes)};
  std::vector<std::uint32_t> po_ends(num_pos);
  in.u32_array(po_ends.data(), num_pos);
  std::string po_pool{in.view(po_pool_bytes)};

  mig::Mig::RawGraph raw;
  raw.num_pis = num_pis;
  raw.fanins.resize(num_gates);
  in.u32_array(reinterpret_cast<std::uint32_t*>(raw.fanins.data()),
               3ull * num_gates);
  raw.pos.resize(num_pos);
  in.u32_array(reinterpret_cast<std::uint32_t*>(raw.pos.data()), num_pos);
  raw.pi_names = mig::NamePool::adopt(std::move(pi_pool), std::move(pi_ends));
  raw.po_names = mig::NamePool::adopt(std::move(po_pool), std::move(po_ends));

  auto graph = mig::Mig::adopt_raw(std::move(raw));
  require(graph.fingerprint() == in.u64(),
          "store: MIG fingerprint mismatch after decode");
  return graph;
}

// ---- small records ---------------------------------------------------------

void encode(util::ByteWriter& out, const mig::RewriteStats& stats) {
  out.u64(stats.initial_gates)
      .u64(stats.final_gates)
      .u64(stats.initial_complement_edges)
      .u64(stats.final_complement_edges)
      .u32(static_cast<std::uint32_t>(stats.cycles_run))
      .u64(stats.total_applications);
  out.u32(static_cast<std::uint32_t>(stats.per_pass.size()));
  for (const auto& pass : stats.per_pass) {
    out.str(pass.name)
        .u64(pass.runs)
        .u64(pass.applications)
        .u64(static_cast<std::uint64_t>(pass.gate_delta))
        .u64(static_cast<std::uint64_t>(pass.complement_delta))
        .u64(static_cast<std::uint64_t>(pass.depth_delta))
        .u64(pass.wall_ns);
  }
}

mig::RewriteStats decode_rewrite_stats(util::ByteReader& in) {
  mig::RewriteStats stats;
  stats.initial_gates = in.u64();
  stats.final_gates = in.u64();
  stats.initial_complement_edges = in.u64();
  stats.final_complement_edges = in.u64();
  stats.cycles_run = static_cast<int>(in.u32());
  stats.total_applications = in.u64();
  stats.per_pass.resize(in.u32());
  for (auto& pass : stats.per_pass) {
    pass.name = in.str();
    pass.runs = in.u64();
    pass.applications = in.u64();
    pass.gate_delta = static_cast<std::int64_t>(in.u64());
    pass.complement_delta = static_cast<std::int64_t>(in.u64());
    pass.depth_delta = static_cast<std::int64_t>(in.u64());
    pass.wall_ns = in.u64();
  }
  return stats;
}

void encode(util::ByteWriter& out, const util::WriteStats& stats) {
  out.u64(stats.count)
      .u64(stats.min)
      .u64(stats.max)
      .u64(stats.total)
      .f64(stats.mean)
      .f64(stats.stdev);
}

util::WriteStats decode_write_stats(util::ByteReader& in) {
  util::WriteStats stats;
  stats.count = in.u64();
  stats.min = in.u64();
  stats.max = in.u64();
  stats.total = in.u64();
  stats.mean = in.f64();
  stats.stdev = in.f64();
  return stats;
}

void encode(util::ByteWriter& out, const fault::LifetimeDistribution& dist) {
  out.u32(dist.trials)
      .u64(dist.runs_cap)
      .u32(dist.censored)
      .u64(dist.lifetime_min)
      .u64(dist.lifetime_p50)
      .u64(dist.lifetime_p99)
      .u64(dist.lifetime_max)
      .f64(dist.lifetime_mean)
      .u64(dist.failed_cells_min)
      .u64(dist.failed_cells_max)
      .f64(dist.failed_cells_mean)
      .u64(dist.remapped_total)
      .u64(dist.dropped_writes);
}

fault::LifetimeDistribution decode_lifetime_distribution(util::ByteReader& in) {
  fault::LifetimeDistribution dist;
  dist.trials = in.u32();
  dist.runs_cap = in.u64();
  dist.censored = in.u32();
  dist.lifetime_min = in.u64();
  dist.lifetime_p50 = in.u64();
  dist.lifetime_p99 = in.u64();
  dist.lifetime_max = in.u64();
  dist.lifetime_mean = in.f64();
  dist.failed_cells_min = in.u64();
  dist.failed_cells_max = in.u64();
  dist.failed_cells_mean = in.f64();
  dist.remapped_total = in.u64();
  dist.dropped_writes = in.u64();
  return dist;
}

// ---- plim::Program ---------------------------------------------------------

// An Instruction is three u32 words ({a, b} operand words + destination
// cell), so the instruction stream serializes as one contiguous
// little-endian u32 section — the same bulk-copy discipline as the MIG
// fanin arena. The asserts pin the layout the reinterpret_casts rely on.
static_assert(sizeof(plim::Operand) == 4 && alignof(plim::Operand) == 4);
static_assert(sizeof(plim::Instruction) == 12 &&
              alignof(plim::Instruction) == 4);
static_assert(std::is_trivially_copyable_v<plim::Instruction>);

void encode(util::ByteWriter& out, const plim::Program& program) {
  const auto instructions = program.instructions();
  out.u32(static_cast<std::uint32_t>(instructions.size()));
  out.u32(static_cast<std::uint32_t>(program.pi_cells().size()));
  out.u32(static_cast<std::uint32_t>(program.po_cells().size()));
  out.u32(program.num_cells());
  out.u32_array(reinterpret_cast<const std::uint32_t*>(instructions.data()),
                3 * instructions.size());
  out.u32_array(program.pi_cells().data(), program.pi_cells().size());
  out.u32_array(program.po_cells().data(), program.po_cells().size());
}

plim::Program decode_program(util::ByteReader& in) {
  plim::Program::RawProgram raw;
  const auto instructions = in.u32();
  const auto pis = in.u32();
  const auto pos = in.u32();
  raw.num_cells = in.u32();
  // Reject hostile counts against the actual bytes present before sizing
  // any allocation (64-bit math, immune to count overflow).
  const auto expected =
      4 * (3 * static_cast<std::uint64_t>(instructions) + pis + pos);
  require(expected <= in.remaining(),
          "store: program sections exceed payload size");
  raw.instructions.resize(instructions);
  in.u32_array(reinterpret_cast<std::uint32_t*>(raw.instructions.data()),
               3 * static_cast<std::size_t>(instructions));
  raw.pi_cells.resize(pis);
  in.u32_array(raw.pi_cells.data(), pis);
  raw.po_cells.resize(pos);
  in.u32_array(raw.po_cells.data(), pos);
  // adopt_raw re-validates everything a replayed build would have enforced.
  return plim::Program::adopt_raw(std::move(raw));
}

// ---- core::EnduranceReport -------------------------------------------------

void encode(util::ByteWriter& out, const core::EnduranceReport& report) {
  out.str(report.benchmark);
  out.str(report.config.canonical_key());
  out.u64(report.instructions);
  out.u64(report.rrams);
  encode(out, report.writes);
  out.u64(report.gates_before_rewrite);
  out.u64(report.gates_after_rewrite);
  encode(out, report.program);
  out.u8(report.fault_sweep.has_value() ? 1 : 0);
  if (report.fault_sweep) {
    encode(out, *report.fault_sweep);
  }
}

core::EnduranceReport decode_report(util::ByteReader& in,
                                    const core::PipelineConfig* expected_config,
                                    std::string_view expected_key) {
  core::EnduranceReport report;
  report.benchmark = in.str();
  const auto key = in.str_view();
  if (expected_config != nullptr && key == expected_key) {
    report.config = *expected_config;
  } else {
    report.config = core::PipelineConfig::parse(key);
  }
  report.instructions = in.u64();
  report.rrams = in.u64();
  report.writes = decode_write_stats(in);
  report.gates_before_rewrite = in.u64();
  report.gates_after_rewrite = in.u64();
  report.program = decode_program(in);
  const auto has_sweep = in.u8();
  require(has_sweep <= 1, "store: fault-sweep presence flag must be 0 or 1");
  if (has_sweep != 0) {
    report.fault_sweep = decode_lifetime_distribution(in);
  }
  return report;
}

// ---- store payloads --------------------------------------------------------

void encode_rewrite_payload(util::ByteWriter& out, const mig::Mig& graph,
                            const mig::RewriteStats& stats) {
  encode(out, graph);
  encode(out, stats);
}

void encode_program_payload(util::ByteWriter& out, const mig::Mig& prepared,
                            const mig::RewriteStats& rewrite_stats,
                            const core::EnduranceReport& report) {
  encode(out, prepared);
  encode(out, rewrite_stats);
  encode(out, report);
}

std::string encode_rewrite_payload(const mig::Mig& graph,
                                   const mig::RewriteStats& stats) {
  util::ByteWriter out;
  encode_rewrite_payload(out, graph, stats);
  return out.take();
}

std::string encode_program_payload(const mig::Mig& prepared,
                                   const mig::RewriteStats& rewrite_stats,
                                   const core::EnduranceReport& report) {
  util::ByteWriter out;
  encode_program_payload(out, prepared, rewrite_stats, report);
  return out.take();
}

std::string encode_payload(const RewritePayload& payload) {
  return encode_rewrite_payload(payload.graph, payload.stats);
}

std::string encode_payload(const ProgramPayload& payload) {
  return encode_program_payload(payload.prepared, payload.rewrite_stats,
                                payload.report);
}

RewritePayload decode_rewrite_payload(std::string_view bytes) {
  util::ByteReader in(bytes);
  RewritePayload payload;
  payload.graph = decode_mig(in);
  payload.stats = decode_rewrite_stats(in);
  in.expect_end();
  return payload;
}

ProgramPayload decode_program_payload(std::string_view bytes,
                                      const core::PipelineConfig* expected_config,
                                      std::string_view expected_key) {
  util::ByteReader in(bytes);
  ProgramPayload payload;
  payload.prepared = decode_mig(in);
  payload.rewrite_stats = decode_rewrite_stats(in);
  payload.report = decode_report(in, expected_config, expected_key);
  in.expect_end();
  return payload;
}

}  // namespace rlim::store
