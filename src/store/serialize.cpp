#include "store/serialize.hpp"

#include <array>

#include "core/config.hpp"
#include "util/error.hpp"

namespace rlim::store {

// ---- mig::Mig --------------------------------------------------------------

void encode(util::ByteWriter& out, const mig::Mig& graph) {
  out.u32(graph.num_pis());
  for (std::uint32_t pi = 0; pi < graph.num_pis(); ++pi) {
    out.str(graph.pi_name(pi));
  }
  out.u32(graph.num_gates());
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes();
       ++gate) {
    for (const auto fanin : graph.fanins(gate)) {
      out.u32(fanin.raw());
    }
  }
  out.u32(graph.num_pos());
  for (std::uint32_t po = 0; po < graph.num_pos(); ++po) {
    out.u32(graph.po_at(po).raw());
    out.str(graph.po_name(po));
  }
  out.u64(graph.fingerprint());
}

mig::Mig decode_mig(util::ByteReader& in) {
  mig::Mig graph;
  const auto num_pis = in.u32();
  for (std::uint32_t pi = 0; pi < num_pis; ++pi) {
    graph.create_pi(in.str());
  }
  const auto num_gates = in.u32();
  for (std::uint32_t gate = 0; gate < num_gates; ++gate) {
    const auto expected = graph.num_nodes();
    std::array<mig::Signal, 3> fanin;
    for (auto& signal : fanin) {
      const auto raw = in.u32();
      require(mig::Signal::from_raw(raw).index() < expected,
              "store: MIG gate references a node after itself");
      signal = mig::Signal::from_raw(raw);
    }
    // Stored gates were created through create_maj, so replaying them must
    // produce a *new* node at the same index: a trivially simplifiable or
    // duplicate gate here means the bytes are not a graph this library built.
    const auto rebuilt = graph.create_maj(fanin[0], fanin[1], fanin[2]);
    require(rebuilt.index() == expected && !rebuilt.is_complemented(),
            "store: MIG gate does not replay structurally");
  }
  const auto num_pos = in.u32();
  for (std::uint32_t po = 0; po < num_pos; ++po) {
    const auto raw = in.u32();
    require(mig::Signal::from_raw(raw).index() < graph.num_nodes(),
            "store: MIG PO references unknown node");
    graph.create_po(mig::Signal::from_raw(raw), in.str());
  }
  require(graph.fingerprint() == in.u64(),
          "store: MIG fingerprint mismatch after decode");
  return graph;
}

// ---- small records ---------------------------------------------------------

void encode(util::ByteWriter& out, const mig::RewriteStats& stats) {
  out.u64(stats.initial_gates)
      .u64(stats.final_gates)
      .u64(stats.initial_complement_edges)
      .u64(stats.final_complement_edges)
      .u32(static_cast<std::uint32_t>(stats.cycles_run))
      .u64(stats.total_applications);
}

mig::RewriteStats decode_rewrite_stats(util::ByteReader& in) {
  mig::RewriteStats stats;
  stats.initial_gates = in.u64();
  stats.final_gates = in.u64();
  stats.initial_complement_edges = in.u64();
  stats.final_complement_edges = in.u64();
  stats.cycles_run = static_cast<int>(in.u32());
  stats.total_applications = in.u64();
  return stats;
}

void encode(util::ByteWriter& out, const util::WriteStats& stats) {
  out.u64(stats.count)
      .u64(stats.min)
      .u64(stats.max)
      .u64(stats.total)
      .f64(stats.mean)
      .f64(stats.stdev);
}

util::WriteStats decode_write_stats(util::ByteReader& in) {
  util::WriteStats stats;
  stats.count = in.u64();
  stats.min = in.u64();
  stats.max = in.u64();
  stats.total = in.u64();
  stats.mean = in.f64();
  stats.stdev = in.f64();
  return stats;
}

// ---- plim::Program ---------------------------------------------------------

namespace {

void encode_operand(util::ByteWriter& out, plim::Operand operand) {
  if (operand.is_constant()) {
    out.u8(operand.constant_value() ? 2 : 1);
  } else {
    out.u8(0).u32(operand.cell_index());
  }
}

plim::Operand decode_operand(util::ByteReader& in) {
  switch (in.u8()) {
    case 0:
      return plim::Operand::cell(in.u32());
    case 1:
      return plim::Operand::constant(false);
    case 2:
      return plim::Operand::constant(true);
    default:
      throw Error("store: bad operand tag");
  }
}

}  // namespace

void encode(util::ByteWriter& out, const plim::Program& program) {
  out.u32(static_cast<std::uint32_t>(program.size()));
  for (const auto& instruction : program.instructions()) {
    encode_operand(out, instruction.a);
    encode_operand(out, instruction.b);
    out.u32(instruction.z);
  }
  out.u32(static_cast<std::uint32_t>(program.pi_cells().size()));
  for (const auto cell : program.pi_cells()) {
    out.u32(cell);
  }
  out.u32(static_cast<std::uint32_t>(program.po_cells().size()));
  for (const auto cell : program.po_cells()) {
    out.u32(cell);
  }
  out.u32(program.num_cells());
}

plim::Program decode_program(util::ByteReader& in) {
  plim::Program program;
  const auto instructions = in.u32();
  for (std::uint32_t i = 0; i < instructions; ++i) {
    const auto a = decode_operand(in);
    const auto b = decode_operand(in);
    program.append({a, b, in.u32()});
  }
  const auto pis = in.u32();
  for (std::uint32_t i = 0; i < pis; ++i) {
    program.bind_pi(in.u32());
  }
  const auto pos = in.u32();
  for (std::uint32_t i = 0; i < pos; ++i) {
    program.bind_po(in.u32());
  }
  // set_num_cells rejects a stored cell space smaller than the references
  // already seen — another way damaged bytes fail instead of mis-decoding.
  program.set_num_cells(in.u32());
  program.validate();
  return program;
}

// ---- core::EnduranceReport -------------------------------------------------

void encode(util::ByteWriter& out, const core::EnduranceReport& report) {
  out.str(report.benchmark);
  out.str(report.config.canonical_key());
  out.u64(report.instructions);
  out.u64(report.rrams);
  encode(out, report.writes);
  out.u64(report.gates_before_rewrite);
  out.u64(report.gates_after_rewrite);
  encode(out, report.program);
}

core::EnduranceReport decode_report(util::ByteReader& in) {
  core::EnduranceReport report;
  report.benchmark = in.str();
  report.config = core::PipelineConfig::parse(in.str());
  report.instructions = in.u64();
  report.rrams = in.u64();
  report.writes = decode_write_stats(in);
  report.gates_before_rewrite = in.u64();
  report.gates_after_rewrite = in.u64();
  report.program = decode_program(in);
  return report;
}

// ---- store payloads --------------------------------------------------------

std::string encode_rewrite_payload(const mig::Mig& graph,
                                   const mig::RewriteStats& stats) {
  util::ByteWriter out;
  encode(out, graph);
  encode(out, stats);
  return out.take();
}

std::string encode_program_payload(const mig::Mig& prepared,
                                   const mig::RewriteStats& rewrite_stats,
                                   const core::EnduranceReport& report) {
  util::ByteWriter out;
  encode(out, prepared);
  encode(out, rewrite_stats);
  encode(out, report);
  return out.take();
}

std::string encode_payload(const RewritePayload& payload) {
  return encode_rewrite_payload(payload.graph, payload.stats);
}

std::string encode_payload(const ProgramPayload& payload) {
  return encode_program_payload(payload.prepared, payload.rewrite_stats,
                                payload.report);
}

RewritePayload decode_rewrite_payload(std::string_view bytes) {
  util::ByteReader in(bytes);
  RewritePayload payload;
  payload.graph = decode_mig(in);
  payload.stats = decode_rewrite_stats(in);
  in.expect_end();
  return payload;
}

ProgramPayload decode_program_payload(std::string_view bytes) {
  util::ByteReader in(bytes);
  ProgramPayload payload;
  payload.prepared = decode_mig(in);
  payload.rewrite_stats = decode_rewrite_stats(in);
  payload.report = decode_report(in);
  in.expect_end();
  return payload;
}

}  // namespace rlim::store
