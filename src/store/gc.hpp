#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "store/format.hpp"

namespace rlim::store {

/// One entry file as the maintenance walk sees it.
struct EntryInfo {
  std::filesystem::path path;
  std::uint64_t size = 0;
  std::filesystem::file_time_type mtime;
};

/// Aggregate shape of a store (the `rlim cache stats` payload).
struct StoreSummary {
  std::size_t entries = 0;
  std::uint64_t bytes = 0;
  std::size_t rewrite_entries = 0;  ///< current-version only
  std::size_t program_entries = 0;  ///< current-version only
  /// Intact prefix, other format version: present on disk but every load
  /// will evict and recompute it.
  std::size_t stale_version = 0;
  /// Files whose fixed-offset frame prefix is short or misframed. Only a
  /// header peek — verify() does full authentication and decoding.
  std::size_t unreadable = 0;
};

struct GcOptions {
  /// Evict oldest-first until the store is at most this many bytes.
  std::optional<std::uint64_t> max_bytes{};
  /// Evict every entry older than this (by file mtime).
  std::optional<std::chrono::seconds> max_age{};
};

struct GcResult {
  std::size_t scanned = 0;
  std::size_t evicted = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
};

struct VerifyResult {
  std::size_t scanned = 0;
  std::size_t ok = 0;
  std::uint64_t ok_bytes = 0;  ///< total file size of the intact entries
  /// Map-validation failures: short file, bad magic/kind, misframed
  /// sections — rejected before any payload work.
  std::size_t evicted_map = 0;
  /// Whole-frame integrity-hash mismatches (bit rot on intact framing).
  std::size_t evicted_hash = 0;
  /// Authenticated frames whose payload no longer decodes (e.g. a policy
  /// key this build does not register).
  std::size_t evicted_decode = 0;
  std::size_t evicted_version = 0;
  std::uint64_t evicted_bytes = 0;  ///< file bytes reclaimed by evictions

  /// Every eviction that is damage rather than a version skew.
  [[nodiscard]] std::size_t evicted_corrupt() const {
    return evicted_map + evicted_hash + evicted_decode;
  }
};

/// Offline maintenance over a DiskStore root: size/age-capped garbage
/// collection, full integrity verification, statistics, and the index
/// manifest (`<root>/manifest.tsv`) that records the surviving entries
/// after every maintenance pass. Maintenance never blocks readers or
/// writers — eviction is plain unlink, and a concurrently recreated entry
/// simply survives to the next pass.
class Gc {
public:
  explicit Gc(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] std::filesystem::path manifest_path() const {
    return root_ / "manifest.tsv";
  }

  /// All entry files, oldest mtime first (the eviction order).
  [[nodiscard]] std::vector<EntryInfo> scan() const;

  /// Shape of the store without modifying it. Reads only each entry's
  /// fixed-offset header prefix, so it stays cheap on large stores.
  [[nodiscard]] StoreSummary summarize() const;

  /// Applies the age cap, then the size cap oldest-first; rewrites the
  /// manifest with the survivors. Also clears leftover temp files.
  GcResult collect(const GcOptions& options);

  /// Authenticates and fully decodes every entry; evicts anything damaged
  /// or version-mismatched, then rewrites the manifest.
  VerifyResult verify();

  /// Deletes every entry (manifest included). Returns entries removed.
  std::size_t clear();

private:
  void write_manifest(const std::vector<EntryInfo>& entries) const;

  std::filesystem::path root_;
};

}  // namespace rlim::store
