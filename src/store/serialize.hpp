#pragma once

#include <string>
#include <string_view>

#include "core/endurance.hpp"
#include "mig/mig.hpp"
#include "mig/rewriting.hpp"
#include "plim/program.hpp"
#include "util/codec.hpp"

namespace rlim::store {

/// Versioned binary (de)serialization of the pipeline artifacts the disk
/// store persists. All encoders append to a util::ByteWriter; all decoders
/// consume a util::ByteReader and throw rlim::Error on any malformation
/// (truncation, out-of-range references, fingerprint mismatch), so a damaged
/// payload can never decode into a structurally wrong object.
///
/// The encoding is covered by store::kFormatVersion: changing any of these
/// layouts requires a version bump.

// ---- mig::Mig --------------------------------------------------------------

/// mmap-friendly sectioned layout (format v2): a fixed-width header of
/// little-endian u32 counts and section sizes —
///   num_pis, num_gates, num_pos, pi_pool_bytes, po_pool_bytes,
///   sections_bytes
/// — followed by the graph's arena sections back-to-back, each a bulk
/// little-endian dump of contiguous storage:
///   pi name ends (num_pis × u32), pi name pool bytes,
///   po name ends (num_pos × u32), po name pool bytes,
///   gate fanins (3·num_gates × u32, topological order),
///   po signals (num_pos × u32)
/// and finally the graph's u64 fingerprint. `sections_bytes` must equal the
/// size the counts imply, so a reader validates the whole section table
/// against the header before touching any section.
void encode(util::ByteWriter& out, const mig::Mig& graph);

/// Bulk-reads the sections into arena storage and reconstitutes the graph
/// through Mig::adopt_raw (which re-validates every structural invariant
/// the construction API enforces), then verifies the embedded fingerprint —
/// a decode that does not reproduce the exact stored structure throws.
[[nodiscard]] mig::Mig decode_mig(util::ByteReader& in);

// ---- small records ---------------------------------------------------------

void encode(util::ByteWriter& out, const mig::RewriteStats& stats);
[[nodiscard]] mig::RewriteStats decode_rewrite_stats(util::ByteReader& in);

void encode(util::ByteWriter& out, const util::WriteStats& stats);
[[nodiscard]] util::WriteStats decode_write_stats(util::ByteReader& in);

void encode(util::ByteWriter& out, const fault::LifetimeDistribution& dist);
[[nodiscard]] fault::LifetimeDistribution decode_lifetime_distribution(
    util::ByteReader& in);

// ---- plim::Program ---------------------------------------------------------

/// Sectioned like the MIG (format v2): a u32 header —
///   num_instructions, num_pis, num_pos, num_cells
/// — then bulk little-endian u32 sections: the instruction stream
/// (3·num_instructions words: operand a, operand b, destination cell per
/// instruction), PI cell bindings, PO cell bindings.
void encode(util::ByteWriter& out, const plim::Program& program);
/// Bulk-reads the sections and reconstitutes through Program::adopt_raw
/// (canonical operand words, every reference inside the cell space).
[[nodiscard]] plim::Program decode_program(util::ByteReader& in);

// ---- core::EnduranceReport -------------------------------------------------

/// The config is encoded as its canonical key and re-parsed on decode, so an
/// entry written under a policy key this build no longer registers fails to
/// decode (and the store treats it as corrupt) instead of resurrecting an
/// unconstructible config.
///
/// The cache load path already holds the parsed config whose canonical key
/// addressed the entry; passing it (with its key) skips the per-load spec
/// re-parse — the stored key is string-compared against `expected_key` and
/// any disagreement falls back to the full parse-and-validate path.
///
/// Format v3 appends the optional fault-sweep block: a u8 presence flag,
/// then the LifetimeDistribution fields when the report carries one.
void encode(util::ByteWriter& out, const core::EnduranceReport& report);
[[nodiscard]] core::EnduranceReport decode_report(
    util::ByteReader& in, const core::PipelineConfig* expected_config = nullptr,
    std::string_view expected_key = {});

// ---- store payloads --------------------------------------------------------

/// Level-1 payload: what flow::PipelineCache::RewriteEntry holds.
struct RewritePayload {
  mig::Mig graph;
  mig::RewriteStats stats;
};

/// Level-2 payload: what flow::PipelineCache::CompiledEntry holds.
struct ProgramPayload {
  mig::Mig prepared;
  mig::RewriteStats rewrite_stats;
  core::EnduranceReport report;
};

/// The single definition of each payload layout — DiskStore write-throughs
/// and the payload-struct overloads below all produce these bytes. The
/// ByteWriter overloads append in place (the store's single-buffer frame
/// encoder); the string overloads are one-shot conveniences.
void encode_rewrite_payload(util::ByteWriter& out, const mig::Mig& graph,
                            const mig::RewriteStats& stats);
void encode_program_payload(util::ByteWriter& out, const mig::Mig& prepared,
                            const mig::RewriteStats& rewrite_stats,
                            const core::EnduranceReport& report);
[[nodiscard]] std::string encode_rewrite_payload(
    const mig::Mig& graph, const mig::RewriteStats& stats);
[[nodiscard]] std::string encode_program_payload(
    const mig::Mig& prepared, const mig::RewriteStats& rewrite_stats,
    const core::EnduranceReport& report);

[[nodiscard]] std::string encode_payload(const RewritePayload& payload);
[[nodiscard]] std::string encode_payload(const ProgramPayload& payload);
[[nodiscard]] RewritePayload decode_rewrite_payload(std::string_view bytes);
/// `expected_config`/`expected_key` forward to decode_report (see above).
[[nodiscard]] ProgramPayload decode_program_payload(
    std::string_view bytes,
    const core::PipelineConfig* expected_config = nullptr,
    std::string_view expected_key = {});

}  // namespace rlim::store
