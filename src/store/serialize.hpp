#pragma once

#include <string>
#include <string_view>

#include "core/endurance.hpp"
#include "mig/mig.hpp"
#include "mig/rewriting.hpp"
#include "plim/program.hpp"
#include "util/codec.hpp"

namespace rlim::store {

/// Versioned binary (de)serialization of the pipeline artifacts the disk
/// store persists. All encoders append to a util::ByteWriter; all decoders
/// consume a util::ByteReader and throw rlim::Error on any malformation
/// (truncation, out-of-range references, fingerprint mismatch), so a damaged
/// payload can never decode into a structurally wrong object.
///
/// The encoding is covered by store::kFormatVersion: changing any of these
/// layouts requires a version bump.

// ---- mig::Mig --------------------------------------------------------------

/// Layout: num_pis, pi names, num_gates, 3 raw fanin signals per gate in
/// topological order, POs (raw signal + name), then the graph's fingerprint.
void encode(util::ByteWriter& out, const mig::Mig& graph);

/// Rebuilds the graph through the ordinary construction API (so every strash
/// and simplification invariant holds) and verifies the embedded fingerprint
/// — a decode that does not reproduce the exact stored structure throws.
[[nodiscard]] mig::Mig decode_mig(util::ByteReader& in);

// ---- small records ---------------------------------------------------------

void encode(util::ByteWriter& out, const mig::RewriteStats& stats);
[[nodiscard]] mig::RewriteStats decode_rewrite_stats(util::ByteReader& in);

void encode(util::ByteWriter& out, const util::WriteStats& stats);
[[nodiscard]] util::WriteStats decode_write_stats(util::ByteReader& in);

// ---- plim::Program ---------------------------------------------------------

void encode(util::ByteWriter& out, const plim::Program& program);
/// Validates the rebuilt program (all references inside the cell space).
[[nodiscard]] plim::Program decode_program(util::ByteReader& in);

// ---- core::EnduranceReport -------------------------------------------------

/// The config is encoded as its canonical key and re-parsed on decode, so an
/// entry written under a policy key this build no longer registers fails to
/// decode (and the store treats it as corrupt) instead of resurrecting an
/// unconstructible config.
void encode(util::ByteWriter& out, const core::EnduranceReport& report);
[[nodiscard]] core::EnduranceReport decode_report(util::ByteReader& in);

// ---- store payloads --------------------------------------------------------

/// Level-1 payload: what flow::PipelineCache::RewriteEntry holds.
struct RewritePayload {
  mig::Mig graph;
  mig::RewriteStats stats;
};

/// Level-2 payload: what flow::PipelineCache::CompiledEntry holds.
struct ProgramPayload {
  mig::Mig prepared;
  mig::RewriteStats rewrite_stats;
  core::EnduranceReport report;
};

/// The single definition of each payload layout — DiskStore write-throughs
/// and the payload-struct overloads below all produce these bytes.
[[nodiscard]] std::string encode_rewrite_payload(
    const mig::Mig& graph, const mig::RewriteStats& stats);
[[nodiscard]] std::string encode_program_payload(
    const mig::Mig& prepared, const mig::RewriteStats& rewrite_stats,
    const core::EnduranceReport& report);

[[nodiscard]] std::string encode_payload(const RewritePayload& payload);
[[nodiscard]] std::string encode_payload(const ProgramPayload& payload);
[[nodiscard]] RewritePayload decode_rewrite_payload(std::string_view bytes);
[[nodiscard]] ProgramPayload decode_program_payload(std::string_view bytes);

}  // namespace rlim::store
