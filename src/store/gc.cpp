#include "store/gc.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <string_view>
#include <system_error>

#include "store/disk_store.hpp"
#include "util/error.hpp"

namespace rlim::store {

namespace {

namespace fs = std::filesystem;

/// Removes leftover temp files from crashed writers. A writer stages a
/// file for milliseconds before renaming it away, so anything older than
/// the grace period is abandoned; younger files may belong to a live
/// writer sharing the root and are left alone (when `everything` is off).
void clear_tmp(const fs::path& root, bool everything = false) {
  constexpr auto kGrace = std::chrono::hours(1);
  const auto horizon = fs::file_time_type::clock::now() - kGrace;
  std::error_code ec;
  for (fs::directory_iterator it(root / "tmp", ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code file_ec;
    const auto mtime = it->last_write_time(file_ec);
    if (everything || file_ec || mtime < horizon) {
      remove_quietly(it->path());
    }
  }
}

/// What the fixed-offset frame prefix (magic, version, kind) says about an
/// entry — enough to classify it without whole-file I/O, so `cache stats`
/// stays a metadata query on multi-gigabyte stores. Integrity is
/// verify()'s job.
struct PeekResult {
  bool readable = false;  ///< prefix present, magic ok, kind known
  bool current = false;   ///< format version matches this build
  EntryKind kind = EntryKind::Rewrite;
};

PeekResult peek_entry(const fs::path& path) {
  PeekResult result;
  std::ifstream is(path, std::ios::binary);
  char prefix[kMagic.size() + 5];
  if (!is.read(prefix, sizeof prefix)) {
    return result;
  }
  if (std::string_view(prefix, kMagic.size()) != kMagic) {
    return result;
  }
  std::uint32_t version = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(prefix[kMagic.size() + i]))
               << (8 * i);
  }
  const auto kind = static_cast<std::uint8_t>(prefix[sizeof prefix - 1]);
  if (kind != static_cast<std::uint8_t>(EntryKind::Rewrite) &&
      kind != static_cast<std::uint8_t>(EntryKind::Program)) {
    return result;
  }
  result.readable = true;
  result.current = version == kFormatVersion;
  result.kind = static_cast<EntryKind>(kind);
  return result;
}

}  // namespace

Gc::Gc(fs::path root) : root_(std::move(root)) {}

std::vector<EntryInfo> Gc::scan() const {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(objects_dir(root_), ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) {
      ec.clear();
      continue;
    }
    EntryInfo info;
    info.path = it->path();
    info.size = it->file_size(ec);
    if (ec) {
      ec.clear();
      continue;
    }
    info.mtime = it->last_write_time(ec);
    if (ec) {
      ec.clear();
      continue;
    }
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              // Oldest first; path as tie-break for a deterministic order.
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
            });
  return entries;
}

StoreSummary Gc::summarize() const {
  StoreSummary summary;
  for (const auto& info : scan()) {
    ++summary.entries;
    summary.bytes += info.size;
    const auto peek = peek_entry(info.path);
    if (!peek.readable) {
      ++summary.unreadable;
    } else if (!peek.current) {
      ++summary.stale_version;
    } else if (peek.kind == EntryKind::Rewrite) {
      ++summary.rewrite_entries;
    } else {
      ++summary.program_entries;
    }
  }
  return summary;
}

GcResult Gc::collect(const GcOptions& options) {
  clear_tmp(root_);
  auto entries = scan();
  GcResult result;
  result.scanned = entries.size();
  for (const auto& info : entries) {
    result.bytes_before += info.size;
  }
  result.bytes_after = result.bytes_before;

  std::vector<EntryInfo> survivors;
  survivors.reserve(entries.size());
  const auto now = fs::file_time_type::clock::now();
  std::uint64_t excess =
      options.max_bytes && result.bytes_before > *options.max_bytes
          ? result.bytes_before - *options.max_bytes
          : 0;
  for (auto& info : entries) {
    const bool too_old = options.max_age && info.mtime + *options.max_age < now;
    // Entries arrive oldest-first, so draining `excess` from the front is
    // exactly oldest-first size eviction.
    if (too_old || excess > 0) {
      remove_quietly(info.path);
      ++result.evicted;
      result.bytes_after -= info.size;
      excess -= std::min(excess, info.size);
      continue;
    }
    survivors.push_back(std::move(info));
  }
  write_manifest(survivors);
  return result;
}

VerifyResult Gc::verify() {
  VerifyResult result;
  std::vector<EntryInfo> survivors;
  for (auto& info : scan()) {
    util::MmapFile file;
    EntryView view;
    const auto status = read_entry_view(info.path, file, view);
    if (status == EntryStatus::Missing) {
      // Unlinked between the scan and the read by concurrent maintenance —
      // nothing left to judge.
      continue;
    }
    ++result.scanned;
    const auto evict = [&](std::size_t& counter) {
      remove_quietly(info.path);
      ++counter;
      result.evicted_bytes += info.size;
    };
    if (status == EntryStatus::VersionMismatch) {
      evict(result.evicted_version);
      continue;
    }
    if (status == EntryStatus::Corrupt) {
      evict(result.evicted_map);
      continue;
    }
    if (status == EntryStatus::HashMismatch) {
      evict(result.evicted_hash);
      continue;
    }
    try {
      if (view.kind == EntryKind::Rewrite) {
        (void)decode_rewrite_payload(view.payload);
      } else {
        (void)decode_program_payload(view.payload);
      }
    } catch (const std::exception&) {
      evict(result.evicted_decode);
      continue;
    }
    ++result.ok;
    result.ok_bytes += info.size;
    survivors.push_back(std::move(info));
  }
  write_manifest(survivors);
  return result;
}

std::size_t Gc::clear() {
  const auto entries = scan();
  for (const auto& info : entries) {
    remove_quietly(info.path);
  }
  clear_tmp(root_, /*everything=*/true);
  remove_quietly(manifest_path());
  return entries.size();
}

void Gc::write_manifest(const std::vector<EntryInfo>& entries) const {
  // Same atomic temp-file-and-rename discipline as entry writes; the
  // manifest is an advisory index (the object tree stays the truth), so a
  // failed write is silently skipped.
  const auto tmp = root_ / "manifest.tsv.tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      return;
    }
    os << "# rlim-store-manifest format=" << kFormatVersion << " entries="
       << entries.size() << '\n';
    for (const auto& info : entries) {
      os << info.path.filename().string() << '\t' << info.size << '\t'
         << std::chrono::duration_cast<std::chrono::nanoseconds>(
                info.mtime.time_since_epoch())
                .count()
         << '\n';
    }
    if (!os.good()) {
      remove_quietly(tmp);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, manifest_path(), ec);
  if (ec) {
    remove_quietly(tmp);
  }
}

}  // namespace rlim::store
