#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "store/format.hpp"
#include "store/serialize.hpp"
#include "util/mmap_file.hpp"

namespace rlim::store {

/// Outcome of reading one entry file, before payload decoding.
enum class EntryStatus {
  Ok,               ///< frame intact, version current
  Missing,          ///< file absent or unopenable (e.g. unlinked by a
                    ///< concurrent gc) — a plain miss, not damage
  Corrupt,          ///< misframed: short file, bad magic/kind, bad framing
  HashMismatch,     ///< framing intact but the whole-frame integrity hash
                    ///< disagrees (bit rot / torn bytes)
  VersionMismatch,  ///< intact frame written by another format version
};

/// Per-worker recyclable I/O buffers. Callers that serve many jobs (the
/// flow::Service worker pool) own one per worker and pass it down through
/// every load/store, so steady-state traffic reuses two buffers instead of
/// allocating per entry. Always optional: nullptr means one-shot buffers.
struct IoScratch {
  std::string read_buffer;   ///< mmap-fallback / plain file reads
  std::string write_buffer;  ///< frame encoding for write-throughs
};

/// Decoded entry frame header with *borrowed* key/payload views — valid only
/// while the backing MmapFile (or scratch buffer) lives. The zero-copy read
/// path: payload decoding happens straight out of the mapping.
struct EntryView {
  EntryKind kind = EntryKind::Rewrite;
  std::uint64_t fingerprint = 0;
  std::string_view key;
  std::string_view payload;
};

/// Decoded entry frame with owned storage (the Gc maintenance walk, which
/// outlives any mapping).
struct EntryFrame {
  EntryKind kind = EntryKind::Rewrite;
  std::uint64_t fingerprint = 0;
  std::string key;
  std::string payload;
};

/// Maps (or, on fallback platforms, reads) one entry file and authenticates
/// it: existence, magic, integrity hash over every framed byte, version.
/// On Ok, `view` borrows from `file` — keep `file` alive while using it.
/// Shared by DiskStore lookups and the `rlim cache verify` walk. Does not
/// decode the payload.
[[nodiscard]] EntryStatus read_entry_view(const std::filesystem::path& path,
                                          util::MmapFile& file,
                                          EntryView& view,
                                          std::string* scratch = nullptr);

/// Owning convenience wrapper over read_entry_view.
[[nodiscard]] EntryStatus read_entry_file(const std::filesystem::path& path,
                                          EntryFrame& frame);

/// Where a store keeps its entry files: `<root>/objects/<aa>/<hash16>.entry`.
[[nodiscard]] std::filesystem::path objects_dir(
    const std::filesystem::path& root);

/// Best-effort unlink (shared by store lookups and Gc maintenance): a
/// missing or busy file is fine — the next reader treats it as a miss.
/// Returns whether a file was actually removed.
bool remove_quietly(const std::filesystem::path& path);

/// File name (sans directory) of an entry: 16 hex chars of the FNV-1a hash
/// over (kind, fingerprint, key), plus ".entry".
[[nodiscard]] std::string entry_file_name(EntryKind kind,
                                          std::uint64_t fingerprint,
                                          std::string_view key);

/// Monotonic counters of one DiskStore's lifetime (all reads/writes since
/// construction — i.e. per process invocation).
struct StoreCounters {
  std::size_t rewrite_loads = 0;    ///< level-1 entries served from disk
  std::size_t program_loads = 0;    ///< level-2 entries served from disk
  std::size_t load_misses = 0;      ///< lookups with no usable entry
  std::size_t stores = 0;           ///< entries written through
  std::size_t store_failures = 0;   ///< write-throughs that failed (ignored)
  std::size_t evicted_corrupt = 0;  ///< damaged entries deleted on read
  std::size_t evicted_version = 0;  ///< other-version entries deleted on read
};

/// Persistent, content-addressed backing tier for flow::PipelineCache.
///
/// Layout: entries live under `<root>/objects/` sharded by the first hex
/// byte of their content address, so directories stay small at millions of
/// entries. Every file is written to `<root>/tmp/` first and renamed into
/// place — readers are lock-free and either see a complete entry or none.
/// Each entry carries a format-version header and an integrity hash over
/// the whole frame; anything that fails authentication or decoding is
/// evicted and reported as a miss, so the worst corruption costs exactly
/// one recompute.
///
/// Reads are mmap-backed (util::MmapFile): a lookup is map + validate +
/// bulk copy into the arena, with no intermediate payload buffer. That
/// is safe precisely because of the tmp+rename write discipline — a mapped
/// entry file is never mutated in place.
///
/// Thread-safe: lookups and write-throughs may run concurrently from any
/// number of Runner workers (and any number of processes sharing the root).
class DiskStore {
public:
  /// Creates the directory skeleton. Throws rlim::Error only when the
  /// directory can neither be created nor read; a readable store this
  /// process cannot write to (seeded cache on a read-only mount) degrades
  /// to read-through, with every skipped write counted as a failure.
  /// Writability itself is probed lazily on the first write (or writable()
  /// call), so read-only consumers never pay for a probe file.
  explicit DiskStore(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  /// False when the store serves read-through only (root not writable).
  /// First call probes by writing and removing a temp file.
  [[nodiscard]] bool writable() const;

  /// Level-1 lookup: the rewritten graph for (fingerprint, canonical
  /// rewrite-spec key), or nullopt on miss/corruption.
  [[nodiscard]] std::optional<RewritePayload> load_rewrite(
      std::uint64_t fingerprint, const std::string& key,
      IoScratch* scratch = nullptr);

  /// Level-2 lookup: the compiled entry for (fingerprint, canonical config
  /// key), or nullopt on miss/corruption. When the caller already holds the
  /// parsed config whose canonical key is `key`, passing it skips the
  /// per-load config re-parse inside the report decode.
  [[nodiscard]] std::optional<ProgramPayload> load_program(
      std::uint64_t fingerprint, const std::string& key,
      IoScratch* scratch = nullptr,
      const core::PipelineConfig* config = nullptr);

  /// Write-through of a freshly computed level-1 entry. Failures (disk
  /// full, permissions) are swallowed and counted: the cache tier must
  /// never fail the pipeline. Returns whether the entry landed.
  bool store_rewrite(std::uint64_t fingerprint, const std::string& key,
                     const mig::Mig& graph, const mig::RewriteStats& stats,
                     IoScratch* scratch = nullptr);

  /// Write-through of a freshly computed level-2 entry.
  bool store_program(std::uint64_t fingerprint, const std::string& key,
                     const mig::Mig& prepared,
                     const mig::RewriteStats& rewrite_stats,
                     const core::EnduranceReport& report,
                     IoScratch* scratch = nullptr);

  [[nodiscard]] StoreCounters counters() const;

private:
  [[nodiscard]] std::filesystem::path entry_path(
      EntryKind kind, std::uint64_t fingerprint, const std::string& key) const;
  /// Shared lookup bookkeeping: reads + authenticates the entry, evicts on
  /// damage, checks the header against the requested address. On true,
  /// `view.payload` (borrowed from `file`) is ready to decode.
  bool load_entry_view(EntryKind kind, std::uint64_t fingerprint,
                       const std::string& key,
                       const std::filesystem::path& path, util::MmapFile& file,
                       EntryView& view, IoScratch* scratch);
  template <typename EncodePayload>
  bool write_entry(EntryKind kind, std::uint64_t fingerprint,
                   const std::string& key, IoScratch* scratch,
                   EncodePayload&& encode_payload);

  std::filesystem::path root_;
  /// Lazily-resolved writability: unknown until the first probe.
  enum : int { kWritableUnknown = -1, kReadOnly = 0, kWritable = 1 };
  mutable std::atomic<int> writable_state_{kWritableUnknown};
  std::atomic<std::size_t> rewrite_loads_{0};
  std::atomic<std::size_t> program_loads_{0};
  std::atomic<std::size_t> load_misses_{0};
  std::atomic<std::size_t> stores_{0};
  std::atomic<std::size_t> store_failures_{0};
  std::atomic<std::size_t> evicted_corrupt_{0};
  std::atomic<std::size_t> evicted_version_{0};
};

/// The RLIM_CACHE_DIR environment default (empty when unset). CLI
/// `--cache-dir` takes precedence over this; an empty result everywhere
/// means the disk tier stays off.
[[nodiscard]] std::string env_cache_dir();

}  // namespace rlim::store
