#include "store/disk_store.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <system_error>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::store {

namespace {

constexpr std::string_view kEntryExtension = ".entry";

}  // namespace

bool remove_quietly(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::remove(path, ec) && !ec;
}

std::filesystem::path objects_dir(const std::filesystem::path& root) {
  return root / "objects";
}

std::string entry_file_name(EntryKind kind, std::uint64_t fingerprint,
                            std::string_view key) {
  const auto hash = util::Fnv1a64()
                        .byte(static_cast<std::uint8_t>(kind))
                        .u64(fingerprint)
                        .str(key)
                        .digest();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 0; i < 16; ++i) {
    name[i] = kHex[(hash >> (60 - 4 * i)) & 0xf];
  }
  name += kEntryExtension;
  return name;
}

EntryStatus read_entry_view(const std::filesystem::path& path,
                            util::MmapFile& file, EntryView& view,
                            std::string* scratch) {
  if (!file.open(path, scratch)) {
    return EntryStatus::Missing;
  }
  const auto bytes = file.bytes();
  // The final 8 bytes authenticate everything before them. The magic is
  // checked before the hash so a foreign or misframed file reports as
  // Corrupt (it was never an entry) while a bit-flipped real entry reports
  // as HashMismatch (it was, and rotted).
  if (bytes.size() < kMagic.size() + 8 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return EntryStatus::Corrupt;
  }
  const auto framed = bytes.substr(0, bytes.size() - 8);
  util::ByteReader trailer(bytes.substr(framed.size()));
  if (util::fnv1a64_lanes(framed) != trailer.u64()) {
    return EntryStatus::HashMismatch;
  }
  try {
    util::ByteReader in(framed);
    in.skip(kMagic.size());
    if (in.u32() != kFormatVersion) {
      return EntryStatus::VersionMismatch;
    }
    const auto kind = in.u8();
    if (kind != static_cast<std::uint8_t>(EntryKind::Rewrite) &&
        kind != static_cast<std::uint8_t>(EntryKind::Program)) {
      return EntryStatus::Corrupt;
    }
    view.kind = static_cast<EntryKind>(kind);
    view.fingerprint = in.u64();
    view.key = in.str_view();
    view.payload = in.str_view();
    in.expect_end();
  } catch (const Error&) {
    return EntryStatus::Corrupt;
  }
  return EntryStatus::Ok;
}

EntryStatus read_entry_file(const std::filesystem::path& path,
                            EntryFrame& frame) {
  util::MmapFile file;
  EntryView view;
  const auto status = read_entry_view(path, file, view);
  if (status == EntryStatus::Ok) {
    frame.kind = view.kind;
    frame.fingerprint = view.fingerprint;
    frame.key = std::string(view.key);
    frame.payload = std::string(view.payload);
  }
  return status;
}

DiskStore::DiskStore(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(objects_dir(root_), ec);
  if (!ec) {
    std::filesystem::create_directories(root_ / "tmp", ec);
  }
  if (ec) {
    // Cannot create the skeleton. The store is still usable iff a readable
    // object tree already exists (a seeded store on a read-only mount):
    // serve read-through only. Anything else is a genuinely unusable
    // directory, which should fail loudly here, not per job.
    std::error_code readable_ec;
    require(std::filesystem::is_directory(objects_dir(root_), readable_ec) &&
                !readable_ec,
            "store: cannot create cache directory '" + root_.string() +
                "': " + ec.message());
    writable_state_.store(kReadOnly);
  }
  // A created/existing skeleton does not prove files are writable (read-only
  // remounts, permissions); that is probed lazily on the first write so a
  // purely-read-through consumer never touches the disk for it.
}

bool DiskStore::writable() const {
  int state = writable_state_.load(std::memory_order_acquire);
  if (state == kWritableUnknown) {
    // Probe by writing and removing a uniquely-named temp file. A racing
    // probe from another thread lands on the same answer, so last-write-wins
    // is fine.
    static std::atomic<std::uint64_t> probe_sequence{0};
    const auto probe =
        root_ / "tmp" /
        (".probe." + std::to_string(::getpid()) + "." +
         std::to_string(probe_sequence.fetch_add(1)));
    bool ok = false;
    {
      std::ofstream os(probe, std::ios::binary | std::ios::trunc);
      ok = os.put('w').good();
    }
    remove_quietly(probe);
    state = ok ? kWritable : kReadOnly;
    writable_state_.store(state, std::memory_order_release);
  }
  return state == kWritable;
}

std::filesystem::path DiskStore::entry_path(EntryKind kind,
                                            std::uint64_t fingerprint,
                                            const std::string& key) const {
  const auto name = entry_file_name(kind, fingerprint, key);
  return objects_dir(root_) / name.substr(0, 2) / name;
}

bool DiskStore::load_entry_view(EntryKind kind, std::uint64_t fingerprint,
                                const std::string& key,
                                const std::filesystem::path& path,
                                util::MmapFile& file, EntryView& view,
                                IoScratch* scratch) {
  switch (read_entry_view(path, file, view,
                          scratch != nullptr ? &scratch->read_buffer
                                             : nullptr)) {
    case EntryStatus::Missing:
      // Absent, or unlinked between directory ops by a concurrent gc —
      // either way a plain miss, never "corruption".
      load_misses_.fetch_add(1);
      return false;
    case EntryStatus::Corrupt:
    case EntryStatus::HashMismatch:
      // The eviction counters claim deletion, so bump them only when the
      // unlink succeeds (a read-only store keeps the damaged file and
      // surfaces the situation through its write-failure counter instead).
      if (remove_quietly(path)) {
        evicted_corrupt_.fetch_add(1);
      }
      load_misses_.fetch_add(1);
      return false;
    case EntryStatus::VersionMismatch:
      if (remove_quietly(path)) {
        evicted_version_.fetch_add(1);
      }
      load_misses_.fetch_add(1);
      return false;
    case EntryStatus::Ok:
      break;
  }
  // A content-address hash collision surfaces as a header mismatch: the
  // resident entry belongs to another key, so this lookup is a plain miss
  // (a later write-through will replace the file).
  if (view.kind != kind || view.fingerprint != fingerprint ||
      view.key != key) {
    load_misses_.fetch_add(1);
    return false;
  }
  return true;
}

std::optional<RewritePayload> DiskStore::load_rewrite(
    std::uint64_t fingerprint, const std::string& key, IoScratch* scratch) {
  const auto path = entry_path(EntryKind::Rewrite, fingerprint, key);
  util::MmapFile file;
  EntryView view;
  if (!load_entry_view(EntryKind::Rewrite, fingerprint, key, path, file, view,
                       scratch)) {
    return std::nullopt;
  }
  try {
    // Decodes straight out of the mapping; `file` stays alive until return.
    auto decoded = decode_rewrite_payload(view.payload);
    rewrite_loads_.fetch_add(1);
    return decoded;
  } catch (const std::exception&) {
    // Authenticated frame but undecodable payload (e.g. a policy key this
    // build no longer registers): evict and recompute.
    if (remove_quietly(path)) {
      evicted_corrupt_.fetch_add(1);
    }
    load_misses_.fetch_add(1);
    return std::nullopt;
  }
}

std::optional<ProgramPayload> DiskStore::load_program(
    std::uint64_t fingerprint, const std::string& key, IoScratch* scratch,
    const core::PipelineConfig* config) {
  const auto path = entry_path(EntryKind::Program, fingerprint, key);
  util::MmapFile file;
  EntryView view;
  if (!load_entry_view(EntryKind::Program, fingerprint, key, path, file, view,
                       scratch)) {
    return std::nullopt;
  }
  try {
    auto decoded = decode_program_payload(view.payload, config, key);
    program_loads_.fetch_add(1);
    return decoded;
  } catch (const std::exception&) {
    if (remove_quietly(path)) {
      evicted_corrupt_.fetch_add(1);
    }
    load_misses_.fetch_add(1);
    return std::nullopt;
  }
}

template <typename EncodePayload>
bool DiskStore::write_entry(EntryKind kind, std::uint64_t fingerprint,
                            const std::string& key, IoScratch* scratch,
                            EncodePayload&& encode_payload) {
  if (!writable()) {
    store_failures_.fetch_add(1);
    return false;
  }
  // The whole frame — header, payload, trailer — is encoded into one buffer
  // (recycled from the scratch when provided): the payload length field is
  // framed first and patched once the payload's size is known.
  util::ByteWriter out(scratch != nullptr ? std::move(scratch->write_buffer)
                                          : std::string{});
  out.raw(kMagic);
  out.u32(kFormatVersion)
      .u8(static_cast<std::uint8_t>(kind))
      .u64(fingerprint)
      .str(key);
  const auto length_offset = out.size();
  out.u32(0);  // payload byte length, patched below
  encode_payload(out);
  out.patch_u32(length_offset,
                static_cast<std::uint32_t>(out.size() - length_offset - 4));
  out.u64(util::fnv1a64_lanes(out.bytes()));

  const auto path = entry_path(kind, fingerprint, key);
  // PID + process-wide sequence: concurrent writers — any thread or
  // DiskStore instance of this process, or other processes sharing the
  // root — always stage to distinct names, so the rename-into-place below
  // never publishes a torn frame.
  static std::atomic<std::uint64_t> tmp_sequence{0};
  const auto tmp = root_ / "tmp" /
                   (path.filename().string() + "." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(tmp_sequence.fetch_add(1)) + ".tmp");
  const auto finish = [&](bool ok) {
    if (scratch != nullptr) {
      scratch->write_buffer = out.take();
    }
    if (ok) {
      stores_.fetch_add(1);
    } else {
      store_failures_.fetch_add(1);
    }
    return ok;
  };
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) {
    return finish(false);
  }
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(out.bytes().data(),
             static_cast<std::streamsize>(out.bytes().size()));
    if (!os.good()) {
      remove_quietly(tmp);
      return finish(false);
    }
  }
  // rename within one filesystem is atomic: concurrent readers see either
  // the previous entry or the complete new one, never a torn write.
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    return finish(false);
  }
  return finish(true);
}

bool DiskStore::store_rewrite(std::uint64_t fingerprint,
                              const std::string& key, const mig::Mig& graph,
                              const mig::RewriteStats& stats,
                              IoScratch* scratch) {
  return write_entry(EntryKind::Rewrite, fingerprint, key, scratch,
                     [&](util::ByteWriter& out) {
                       encode_rewrite_payload(out, graph, stats);
                     });
}

bool DiskStore::store_program(std::uint64_t fingerprint,
                              const std::string& key, const mig::Mig& prepared,
                              const mig::RewriteStats& rewrite_stats,
                              const core::EnduranceReport& report,
                              IoScratch* scratch) {
  return write_entry(EntryKind::Program, fingerprint, key, scratch,
                     [&](util::ByteWriter& out) {
                       encode_program_payload(out, prepared, rewrite_stats,
                                              report);
                     });
}

StoreCounters DiskStore::counters() const {
  StoreCounters counters;
  counters.rewrite_loads = rewrite_loads_.load();
  counters.program_loads = program_loads_.load();
  counters.load_misses = load_misses_.load();
  counters.stores = stores_.load();
  counters.store_failures = store_failures_.load();
  counters.evicted_corrupt = evicted_corrupt_.load();
  counters.evicted_version = evicted_version_.load();
  return counters;
}

std::string env_cache_dir() {
  const char* dir = std::getenv("RLIM_CACHE_DIR");
  return dir == nullptr ? std::string{} : std::string(dir);
}

}  // namespace rlim::store
