#include "store/disk_store.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rlim::store {

namespace {

constexpr std::string_view kEntryExtension = ".entry";

/// Reads a whole file into `bytes`; false when it does not exist or any
/// read fails.
bool read_file(const std::filesystem::path& path, std::string& bytes) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return false;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is.good() && !is.eof()) {
    return false;
  }
  bytes = std::move(buffer).str();
  return true;
}

}  // namespace

bool remove_quietly(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::remove(path, ec) && !ec;
}

std::filesystem::path objects_dir(const std::filesystem::path& root) {
  return root / "objects";
}

std::string entry_file_name(EntryKind kind, std::uint64_t fingerprint,
                            std::string_view key) {
  const auto hash = util::Fnv1a64()
                        .byte(static_cast<std::uint8_t>(kind))
                        .u64(fingerprint)
                        .str(key)
                        .digest();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 0; i < 16; ++i) {
    name[i] = kHex[(hash >> (60 - 4 * i)) & 0xf];
  }
  name += kEntryExtension;
  return name;
}

EntryStatus read_entry_file(const std::filesystem::path& path,
                            EntryFrame& frame) {
  std::string bytes;
  if (!read_file(path, bytes)) {
    return EntryStatus::Missing;
  }
  // The final 8 bytes authenticate everything before them.
  if (bytes.size() < kMagic.size() + 8) {
    return EntryStatus::Corrupt;
  }
  const std::string_view framed(bytes.data(), bytes.size() - 8);
  util::ByteReader trailer(
      std::string_view(bytes.data() + framed.size(), 8));
  if (util::Fnv1a64().str(framed).digest() != trailer.u64()) {
    return EntryStatus::Corrupt;
  }
  try {
    util::ByteReader in(framed);
    std::string magic;
    for (std::size_t i = 0; i < kMagic.size(); ++i) {
      magic.push_back(static_cast<char>(in.u8()));
    }
    if (magic != kMagic) {
      return EntryStatus::Corrupt;
    }
    if (in.u32() != kFormatVersion) {
      return EntryStatus::VersionMismatch;
    }
    const auto kind = in.u8();
    if (kind != static_cast<std::uint8_t>(EntryKind::Rewrite) &&
        kind != static_cast<std::uint8_t>(EntryKind::Program)) {
      return EntryStatus::Corrupt;
    }
    frame.kind = static_cast<EntryKind>(kind);
    frame.fingerprint = in.u64();
    frame.key = in.str();
    frame.payload = in.str();
    in.expect_end();
  } catch (const Error&) {
    return EntryStatus::Corrupt;
  }
  return EntryStatus::Ok;
}

DiskStore::DiskStore(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(objects_dir(root_), ec);
  if (!ec) {
    std::filesystem::create_directories(root_ / "tmp", ec);
  }
  if (ec) {
    // Cannot create the skeleton. The store is still usable iff a readable
    // object tree already exists (a seeded store on a read-only mount):
    // serve read-through only. Anything else is a genuinely unusable
    // directory, which should fail loudly here, not per job.
    std::error_code readable_ec;
    require(std::filesystem::is_directory(objects_dir(root_), readable_ec) &&
                !readable_ec,
            "store: cannot create cache directory '" + root_.string() +
                "': " + ec.message());
    writable_ = false;
    return;
  }
  // Probe writability up front: an existing skeleton whose files this
  // process cannot write (read-only mount, permissions) must degrade to
  // read-through — visibly, via the write-failure counter — instead of
  // attempting and swallowing every write.
  const auto probe =
      root_ / "tmp" / (".probe." + std::to_string(::getpid()));
  {
    std::ofstream os(probe, std::ios::binary | std::ios::trunc);
    writable_ = os.put('w').good();
  }
  remove_quietly(probe);
}

std::filesystem::path DiskStore::entry_path(EntryKind kind,
                                            std::uint64_t fingerprint,
                                            const std::string& key) const {
  const auto name = entry_file_name(kind, fingerprint, key);
  return objects_dir(root_) / name.substr(0, 2) / name;
}

std::optional<std::string> DiskStore::load_payload(EntryKind kind,
                                                   std::uint64_t fingerprint,
                                                   const std::string& key) {
  const auto path = entry_path(kind, fingerprint, key);
  EntryFrame frame;
  switch (read_entry_file(path, frame)) {
    case EntryStatus::Missing:
      // Absent, or unlinked between directory ops by a concurrent gc —
      // either way a plain miss, never "corruption".
      load_misses_.fetch_add(1);
      return std::nullopt;
    case EntryStatus::Corrupt:
      // The eviction counters claim deletion, so bump them only when the
      // unlink succeeds (a read-only store keeps the damaged file and
      // surfaces the situation through its write-failure counter instead).
      if (remove_quietly(path)) {
        evicted_corrupt_.fetch_add(1);
      }
      load_misses_.fetch_add(1);
      return std::nullopt;
    case EntryStatus::VersionMismatch:
      if (remove_quietly(path)) {
        evicted_version_.fetch_add(1);
      }
      load_misses_.fetch_add(1);
      return std::nullopt;
    case EntryStatus::Ok:
      break;
  }
  // A content-address hash collision surfaces as a header mismatch: the
  // resident entry belongs to another key, so this lookup is a plain miss
  // (a later write-through will replace the file).
  if (frame.kind != kind || frame.fingerprint != fingerprint ||
      frame.key != key) {
    load_misses_.fetch_add(1);
    return std::nullopt;
  }
  return std::move(frame.payload);
}

std::optional<RewritePayload> DiskStore::load_rewrite(
    std::uint64_t fingerprint, const std::string& key) {
  auto payload = load_payload(EntryKind::Rewrite, fingerprint, key);
  if (!payload) {
    return std::nullopt;
  }
  try {
    auto decoded = decode_rewrite_payload(*payload);
    rewrite_loads_.fetch_add(1);
    return decoded;
  } catch (const std::exception&) {
    // Authenticated frame but undecodable payload (e.g. a policy key this
    // build no longer registers): evict and recompute.
    if (remove_quietly(entry_path(EntryKind::Rewrite, fingerprint, key))) {
      evicted_corrupt_.fetch_add(1);
    }
    load_misses_.fetch_add(1);
    return std::nullopt;
  }
}

std::optional<ProgramPayload> DiskStore::load_program(
    std::uint64_t fingerprint, const std::string& key) {
  auto payload = load_payload(EntryKind::Program, fingerprint, key);
  if (!payload) {
    return std::nullopt;
  }
  try {
    auto decoded = decode_program_payload(*payload);
    program_loads_.fetch_add(1);
    return decoded;
  } catch (const std::exception&) {
    if (remove_quietly(entry_path(EntryKind::Program, fingerprint, key))) {
      evicted_corrupt_.fetch_add(1);
    }
    load_misses_.fetch_add(1);
    return std::nullopt;
  }
}

bool DiskStore::write_entry(EntryKind kind, std::uint64_t fingerprint,
                            const std::string& key,
                            std::string_view payload) {
  if (!writable_) {
    store_failures_.fetch_add(1);
    return false;
  }
  util::ByteWriter out;
  out.raw(kMagic)
      .u32(kFormatVersion)
      .u8(static_cast<std::uint8_t>(kind))
      .u64(fingerprint)
      .str(key);
  out.str(payload);
  out.u64(util::Fnv1a64().str(out.bytes()).digest());

  const auto path = entry_path(kind, fingerprint, key);
  // PID + process-wide sequence: concurrent writers — any thread or
  // DiskStore instance of this process, or other processes sharing the
  // root — always stage to distinct names, so the rename-into-place below
  // never publishes a torn frame.
  static std::atomic<std::uint64_t> tmp_sequence{0};
  const auto tmp = root_ / "tmp" /
                   (path.filename().string() + "." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(tmp_sequence.fetch_add(1)) + ".tmp");
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) {
    store_failures_.fetch_add(1);
    return false;
  }
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(out.bytes().data(),
             static_cast<std::streamsize>(out.bytes().size()));
    if (!os.good()) {
      remove_quietly(tmp);
      store_failures_.fetch_add(1);
      return false;
    }
  }
  // rename within one filesystem is atomic: concurrent readers see either
  // the previous entry or the complete new one, never a torn write.
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    store_failures_.fetch_add(1);
    return false;
  }
  stores_.fetch_add(1);
  return true;
}

bool DiskStore::store_rewrite(std::uint64_t fingerprint,
                              const std::string& key, const mig::Mig& graph,
                              const mig::RewriteStats& stats) {
  return write_entry(EntryKind::Rewrite, fingerprint, key,
                     encode_rewrite_payload(graph, stats));
}

bool DiskStore::store_program(std::uint64_t fingerprint,
                              const std::string& key, const mig::Mig& prepared,
                              const mig::RewriteStats& rewrite_stats,
                              const core::EnduranceReport& report) {
  return write_entry(EntryKind::Program, fingerprint, key,
                     encode_program_payload(prepared, rewrite_stats, report));
}

StoreCounters DiskStore::counters() const {
  StoreCounters counters;
  counters.rewrite_loads = rewrite_loads_.load();
  counters.program_loads = program_loads_.load();
  counters.load_misses = load_misses_.load();
  counters.stores = stores_.load();
  counters.store_failures = store_failures_.load();
  counters.evicted_corrupt = evicted_corrupt_.load();
  counters.evicted_version = evicted_version_.load();
  return counters;
}

std::string env_cache_dir() {
  const char* dir = std::getenv("RLIM_CACHE_DIR");
  return dir == nullptr ? std::string{} : std::string(dir);
}

}  // namespace rlim::store
