#include "sched/deque.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace rlim::sched {

Priority parse_priority(std::string_view text) {
  if (text == "low") {
    return Priority::Low;
  }
  if (text == "normal") {
    return Priority::Normal;
  }
  if (text == "high") {
    return Priority::High;
  }
  throw Error("sched: unknown priority '" + std::string(text) +
              "' (expected low|normal|high)");
}

bool WorkDeque::push(Task& task) {
  const std::scoped_lock lock(mutex_);
  if (capacity_ != 0 && size_ >= capacity_) {
    return false;
  }
  auto& band = bands_[static_cast<std::size_t>(task.priority)];
  if (task.deadline) {
    // Earliest-first, stable for equal deadlines (FIFO among ties).
    const auto at = std::upper_bound(
        band.timed.begin(), band.timed.end(), *task.deadline,
        [](const Deadline& deadline, const Task& queued) {
          return deadline < *queued.deadline;
        });
    band.timed.insert(at, std::move(task));
  } else if (task.child) {
    band.children.push_back(std::move(task));
  } else {
    band.external.push_back(std::move(task));
  }
  ++size_;
  return true;
}

std::optional<Task> WorkDeque::take_locked(bool owner) {
  for (std::size_t band = kPriorityBands; band-- > 0;) {
    auto& timed = bands_[band].timed;
    if (!timed.empty()) {
      Task task = std::move(timed.front());
      timed.pop_front();
      --size_;
      return task;
    }
    auto& children = bands_[band].children;
    if (!children.empty()) {
      Task task;
      if (owner) {
        task = std::move(children.back());
        children.pop_back();
      } else {
        task = std::move(children.front());
        children.pop_front();
      }
      --size_;
      return task;
    }
    auto& external = bands_[band].external;
    if (!external.empty()) {
      Task task = std::move(external.front());
      external.pop_front();
      --size_;
      return task;
    }
  }
  return std::nullopt;
}

std::optional<Task> WorkDeque::pop() {
  const std::scoped_lock lock(mutex_);
  return take_locked(/*owner=*/true);
}

std::optional<Task> WorkDeque::steal() {
  const std::scoped_lock lock(mutex_);
  return take_locked(/*owner=*/false);
}

std::size_t WorkDeque::size() const {
  const std::scoped_lock lock(mutex_);
  return size_;
}

}  // namespace rlim::sched
