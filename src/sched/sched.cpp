#include "sched/sched.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace rlim::sched {

namespace {

/// Failed full scans a worker tolerates (yield, then escalating micro-sleeps)
/// before it pays the park-lock round trip. ~0.5 ms of patience: long enough
/// that a serve-path burst never parks between jobs, short enough that an
/// idle pool costs nothing measurable.
constexpr unsigned kIdleSpinLimit = 8;

/// The executing scheduler/worker of this thread; null off-pool. File-scope
/// so Scheduler::current() and run_children() agree on the same slots.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local void* tls_worker = nullptr;

void idle_backoff(unsigned idle) {
  if (idle <= 2) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(
        std::chrono::microseconds(1u << std::min(idle, 10u)));
  }
}

}  // namespace

Scheduler* Scheduler::current() { return tls_scheduler; }

Scheduler::Scheduler(SchedulerOptions options) : options_(std::move(options)) {
  target_workers_ = options_.workers;
  if (target_workers_ == 0) {
    target_workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(target_workers_);
  for (unsigned index = 0; index < target_workers_; ++index) {
    workers_.push_back(std::make_unique<Worker>(
        options_.deque_capacity,
        util::mix_seed(options_.steal_seed, index)));
  }
  threads_.reserve(target_workers_);
  // Threads spawn lazily in ensure_worker(); the deques exist up front so
  // submission can distribute work without coordinating with spawning
  // (anything placed on a not-yet-started worker's deque is stolen).
}

Scheduler::~Scheduler() { shutdown(); }

// ---- submission ------------------------------------------------------------

void Scheduler::submit(Task task) {
  require(!stopping_.load(), "sched: submit after shutdown");
  require(task.fn != nullptr, "sched: task without a function");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  by_priority_[static_cast<std::size_t>(task.priority)].fetch_add(
      1, std::memory_order_relaxed);
  enqueue(std::move(task));
}

void Scheduler::enqueue(Task task) {
  // queued_ rises before the push (and before the wake check): a worker
  // concurrently deciding to park re-reads queued_ after raising sleeping_,
  // so one of the two sides always observes the other.
  queued_.fetch_add(1);
  if (!options_.single_queue) {
    const auto count = workers_.size();
    const auto start =
        rr_next_.fetch_add(1, std::memory_order_relaxed) % count;
    for (std::size_t i = 0; i < count; ++i) {
      if (workers_[(start + i) % count]->deque.push(task)) {
        ensure_worker();
        wake_one();
        return;
      }
    }
    // Every deque is at capacity: spill to the unbounded injector.
    overflows_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool pushed = injector_.push(task);
  (void)pushed;  // the injector is unbounded
  ensure_worker();
  wake_one();
}

void Scheduler::ensure_worker() {
  if (stopping_.load() ||
      spawned_.load(std::memory_order_relaxed) >= target_workers_) {
    return;
  }
  const std::scoped_lock lock(threads_mutex_);
  if (stopping_.load() || threads_.size() >= target_workers_) {
    return;
  }
  const auto index = static_cast<unsigned>(threads_.size());
  threads_.emplace_back([this, index] { worker_loop(index); });
  spawned_.store(static_cast<unsigned>(threads_.size()),
                 std::memory_order_relaxed);
}

void Scheduler::wake_one() {
  if (sleeping_.load() == 0) {
    return;  // steady-state fast path: no park lock touched
  }
  const std::scoped_lock lock(park_mutex_);
  park_cv_.notify_one();
}

void Scheduler::wake_all() {
  const std::scoped_lock lock(park_mutex_);
  park_cv_.notify_all();
}

// ---- worker side -----------------------------------------------------------

std::optional<Task> Scheduler::find_task(Worker* self, util::Xoshiro256& rng) {
  if (self != nullptr) {
    if (auto task = self->deque.pop()) {
      queued_.fetch_sub(1);
      return task;
    }
  }
  if (auto task = injector_.steal()) {
    queued_.fetch_sub(1);
    return task;
  }
  if (const auto count = workers_.size(); count > 1) {
    // Random rotation: thieves spread across victims instead of convoying
    // on worker 0. A full pass visits everyone, so nothing is stranded.
    const std::size_t start = static_cast<std::size_t>(rng.below(count));
    for (std::size_t i = 0; i < count; ++i) {
      auto* victim = workers_[(start + i) % count].get();
      if (victim == self) {
        continue;
      }
      if (auto task = victim->deque.steal()) {
        queued_.fetch_sub(1);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return std::nullopt;
}

void Scheduler::worker_loop(unsigned index) {
  auto* self = workers_[index].get();
  tls_scheduler = this;
  tls_worker = self;
  unsigned idle = 0;
  while (true) {
    if (auto task = find_task(self, self->rng)) {
      idle = 0;
      task->fn();
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load()) {
      return;  // drained: find_task() above came up empty
    }
    if (idle < kIdleSpinLimit) {
      idle_backoff(++idle);
      continue;
    }
    std::unique_lock lock(park_mutex_);
    sleeping_.fetch_add(1);
    if (queued_.load() > 0 || stopping_.load()) {
      // Work (or shutdown) raced in between the scan and the lock.
      sleeping_.fetch_sub(1);
      idle = 0;
      continue;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait(lock, [&] { return queued_.load() > 0 || stopping_.load(); });
    sleeping_.fetch_sub(1);
    idle = 0;
  }
}

// ---- fork-join -------------------------------------------------------------

void Scheduler::run_children(std::vector<std::function<void()>> children,
                             Priority priority) {
  if (children.empty()) {
    return;
  }
  struct Join {
    std::atomic<std::size_t> remaining{0};
    std::mutex mutex;
    std::exception_ptr error;
  };
  const auto join = std::make_shared<Join>();
  join->remaining.store(children.size());
  const auto wrap = [&join](std::function<void()> fn) {
    return [join, fn = std::move(fn)] {
      try {
        fn();
      } catch (...) {
        const std::scoped_lock lock(join->mutex);
        if (join->error == nullptr) {
          join->error = std::current_exception();
        }
      }
      join->remaining.fetch_sub(1);
    };
  };

  auto* self =
      tls_scheduler == this ? static_cast<Worker*>(tls_worker) : nullptr;
  if (self == nullptr) {
    // Off-pool caller (or a worker of some other scheduler): run inline,
    // serially, with the same first-exception-rethrown contract.
    for (auto& child : children) {
      forked_.fetch_add(1, std::memory_order_relaxed);
      by_priority_[static_cast<std::size_t>(priority)].fetch_add(
          1, std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
      wrap(std::move(child))();
    }
  } else {
    for (auto& child : children) {
      forked_.fetch_add(1, std::memory_order_relaxed);
      by_priority_[static_cast<std::size_t>(priority)].fetch_add(
          1, std::memory_order_relaxed);
      Task task{wrap(std::move(child)), priority, std::nullopt,
                /*child=*/true};
      queued_.fetch_add(1);
      if (options_.single_queue) {
        const bool pushed = injector_.push(task);
        (void)pushed;
        ensure_worker();
        wake_one();
      } else if (self->deque.push(task)) {
        // LIFO on the parent's own deque: the parent pops its freshest fork
        // first while thieves take the oldest — the classic fork-join shape.
        ensure_worker();
        wake_one();
      } else {
        // The deque is at capacity: run in place. Bounded memory beats
        // parallelism, and the parent was about to execute children anyway.
        queued_.fetch_sub(1);
        overflows_.fetch_add(1, std::memory_order_relaxed);
        executed_.fetch_add(1, std::memory_order_relaxed);
        task.fn();
      }
    }
    // Helping join: keep executing tasks (own, injected, stolen — including
    // children another worker pushed back) until every child completed. The
    // parent never parks here; on a one-worker pool it *is* the pool.
    unsigned idle = 0;
    while (join->remaining.load() != 0) {
      if (auto task = find_task(self, self->rng)) {
        idle = 0;
        task->fn();
        executed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (++idle <= 16) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  if (join->error != nullptr) {
    std::rethrow_exception(join->error);
  }
}

// ---- lifecycle -------------------------------------------------------------

void Scheduler::shutdown() {
  stopping_.store(true);
  wake_all();
  std::vector<std::thread> threads;
  {
    const std::scoped_lock lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.parks = parks_.load(std::memory_order_relaxed);
  stats.overflows = overflows_.load(std::memory_order_relaxed);
  stats.forked = forked_.load(std::memory_order_relaxed);
  stats.queue_depth = queued_.load();
  for (std::size_t band = 0; band < kPriorityBands; ++band) {
    stats.by_priority[band] =
        by_priority_[band].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace rlim::sched
