#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/deque.hpp"
#include "util/rng.hpp"

namespace rlim::sched {

struct SchedulerOptions {
  /// Worker ceiling; 0 selects std::thread::hardware_concurrency(). Threads
  /// spawn lazily — one per submitted task up to the ceiling — so a two-task
  /// workload never pays for a 64-thread pool.
  unsigned workers = 0;
  /// Per-worker deque bound; a push that finds every deque full spills to
  /// the unbounded shared injector (counted in SchedulerStats::overflows).
  /// Bounding the hot deques keeps any one worker's backlog — and therefore
  /// the worst-case steal scan — short under heavy mixed traffic.
  std::size_t deque_capacity = 1024;
  /// Benchmark baseline: route every task through the single shared injector
  /// queue (no per-worker deques, no stealing) — the convoy shape the
  /// work-stealing design replaces. BM_ServeLoad flips this to compare the
  /// two ends of the same machinery; production code leaves it false.
  bool single_queue = false;
  /// RNG seed of the victim-selection streams (per worker, decorrelated via
  /// util::mix_seed). The default is fine: victim order affects performance,
  /// never results.
  std::uint64_t steal_seed = 0x5eedull;
};

/// Monotonic counters + gauges; a consistent snapshot via stats().
struct SchedulerStats {
  std::uint64_t submitted = 0;    ///< external tasks accepted
  std::uint64_t executed = 0;     ///< tasks run to completion (incl. children)
  std::uint64_t stolen = 0;       ///< tasks taken from another worker's deque
  std::uint64_t parks = 0;        ///< times a worker went to sleep
  std::uint64_t overflows = 0;    ///< pushes that spilled to the injector
  std::uint64_t forked = 0;       ///< child tasks forked by run_children()
  std::uint64_t queue_depth = 0;  ///< gauge: tasks queued right now
  /// Tasks accepted per priority band (submitted + forked), indexed by
  /// static_cast<size_t>(Priority).
  std::uint64_t by_priority[kPriorityBands] = {0, 0, 0};
};

/// Work-stealing task scheduler (the design is ponyc's
/// libponyrt/sched/scheduler.h, re-idiomized onto mutexes): each worker owns
/// a bounded priority deque it pushes and pops LIFO; when dry it drains the
/// shared injector, then steals FIFO from randomly ordered victims; when a
/// full scan finds nothing it backs off exponentially and finally parks on a
/// condition variable. A sleeping-worker count gates the wake notification,
/// so steady-state submission with hot workers never touches the park lock
/// and idle workers never spin.
///
/// Tasks are plain closures; they must not throw (run_children() is the
/// exception-aware layer). Queued tasks the owner no longer wants are
/// expected to be tombstoned by the caller (flow::Service marks its Task
/// state) — the scheduler itself runs everything it accepted, including
/// during shutdown drain.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  /// Calls shutdown().
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues one task; returns immediately. Round-robins across the worker
  /// deques (with priority/deadline ordering inside each), spilling to the
  /// shared injector when all are full. Throws after shutdown().
  void submit(Task task);

  /// Fork-join: runs every closure as a child task and returns when all have
  /// completed. Called on a worker thread, children are pushed LIFO onto the
  /// caller's own deque (thieves may take them FIFO) and the parent *helps*
  /// — it keeps executing tasks, its own and stolen, while any child is
  /// outstanding, and never parks. Called off-pool, the children simply run
  /// inline. The first child exception is rethrown at the join; remaining
  /// children still run.
  void run_children(std::vector<std::function<void()>> children,
                    Priority priority = Priority::Normal);

  /// Stops the workers and joins them. Everything already queued is drained
  /// first (cheap when the owner tombstoned its tasks); nothing new is
  /// accepted. Idempotent.
  void shutdown();

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] unsigned workers() const { return target_workers_; }

  /// The scheduler executing the calling thread, or nullptr off-pool. How
  /// nested parallelism (fault-sweep trials inside a compile job) finds its
  /// way back to the pool without threading a handle through every layer.
  [[nodiscard]] static Scheduler* current();

 private:
  struct Worker {
    explicit Worker(std::size_t capacity, std::uint64_t seed)
        : deque(capacity), rng(seed) {}
    WorkDeque deque;
    util::Xoshiro256 rng;  ///< victim order; touched only by the owner thread
  };

  void worker_loop(unsigned index);
  /// One full scan: own deque (workers only), injector, then every victim in
  /// random order. `rng` is the scanning thread's private stream.
  [[nodiscard]] std::optional<Task> find_task(Worker* self,
                                              util::Xoshiro256& rng);
  void enqueue(Task task);
  void ensure_worker();
  void wake_one();
  void wake_all();

  SchedulerOptions options_;
  unsigned target_workers_ = 1;

  /// Fixed at construction (stealing scans this without coordination).
  std::vector<std::unique_ptr<Worker>> workers_;
  WorkDeque injector_;  ///< unbounded: overflow + single-queue mode

  std::atomic<std::uint64_t> rr_next_{0};  ///< round-robin submission cursor
  /// Tasks queued anywhere (deques + injector). The park/wake handshake:
  /// submit increments it *before* waking; a parking worker re-checks it
  /// *after* raising sleeping_ under the park lock — one side always sees
  /// the other (both are seq_cst), so no task is ever stranded with every
  /// worker asleep.
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> sleeping_{0};
  std::atomic<bool> stopping_{false};

  std::mutex park_mutex_;
  std::condition_variable park_cv_;

  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
  std::atomic<unsigned> spawned_{0};  ///< == threads_.size(); lock-free gate

  // Stats (relaxed: they order nothing).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> forked_{0};
  std::atomic<std::uint64_t> by_priority_[kPriorityBands]{};
};

}  // namespace rlim::sched
