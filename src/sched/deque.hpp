#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace rlim::sched {

/// Priority bands of one schedulable task. Three coarse bands (ponyc-style
/// schedulers get away with none; serve traffic wants "this probe beats the
/// batch backfill" without a full priority lattice). Wire code relies on the
/// numeric values: they are serialized as a u8 in flow::wire v5.
enum class Priority : std::uint8_t {
  Low = 0,     ///< backfill — yields to everything
  Normal = 1,  ///< default
  High = 2,    ///< latency-sensitive — dequeued before both other bands
};

inline constexpr std::size_t kPriorityBands = 3;

[[nodiscard]] constexpr std::string_view to_string(Priority priority) {
  switch (priority) {
    case Priority::Low:
      return "low";
    case Priority::Normal:
      return "normal";
    case Priority::High:
      return "high";
  }
  return "unknown";
}

/// Parses "low" / "normal" / "high" (throws rlim::Error on anything else).
[[nodiscard]] Priority parse_priority(std::string_view text);

/// Soft deadline: a steady-clock point the scheduler *biases toward*, never a
/// guarantee — within a priority band, deadline-bearing tasks run earliest-
/// first and ahead of undated ones. Missing a deadline has no effect beyond
/// the ordering bias.
using Deadline = std::chrono::steady_clock::time_point;

/// One schedulable unit: a closure plus its dequeue-order hints.
struct Task {
  std::function<void()> fn;
  Priority priority = Priority::Normal;
  std::optional<Deadline> deadline{};
  /// A fork-join child (run_children) rather than an external submission.
  /// Children pop LIFO — the fork recursion order — and, within their band,
  /// ahead of external tasks; external tasks keep FIFO arrival order, the
  /// fairness a serving queue owes its clients.
  bool child = false;
};

/// A bounded, priority-banded work deque — the per-worker queue of the
/// work-stealing scheduler. Owner and thieves converge on one internal
/// mutex (uncontended in the common case: thieves only arrive when their
/// own deques are dry), which keeps the structure trivially TSan-clean;
/// the lock is never held while a task runs.
///
/// Ordering within the structure:
///   - higher priority bands are always drained first, by owner and thief
///     alike;
///   - within a band, deadline-bearing tasks go earliest-deadline-first and
///     ahead of undated ones (the "soft deadline" bias);
///   - undated children: the owner pops LIFO (its freshest fork —
///     cache-warm, and the fork-join recursion order), a thief steals FIFO
///     (the oldest fork — the largest remaining subtree, and the one the
///     owner is least likely to touch next);
///   - undated external tasks come after a band's children and keep FIFO
///     arrival order for owner and thief alike — a serving queue owes its
///     clients arrival fairness, and thieves want the oldest (most
///     starved) job anyway.
class WorkDeque {
 public:
  /// `capacity` bounds the total task count; 0 means unbounded (the shared
  /// injector queue uses that).
  explicit WorkDeque(std::size_t capacity = 0) : capacity_(capacity) {}

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner-side push. Returns false (task untouched) when full.
  [[nodiscard]] bool push(Task& task);

  /// Owner-side take: highest band; inside it deadline-first, then the
  /// freshest child (LIFO), then the oldest external task (FIFO).
  [[nodiscard]] std::optional<Task> pop();

  /// Thief-side take: highest band; inside it deadline-first, then the
  /// oldest child and oldest external task (FIFO).
  [[nodiscard]] std::optional<Task> steal();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Band {
    /// Deadline-bearing tasks, kept earliest-first (stable for ties).
    std::deque<Task> timed;
    /// Undated fork-join children: push_back; owner pops back (LIFO),
    /// thief pops front (FIFO).
    std::deque<Task> children;
    /// Undated external tasks: push_back; everyone pops front (FIFO).
    std::deque<Task> external;
  };

  [[nodiscard]] std::optional<Task> take_locked(bool owner);

  mutable std::mutex mutex_;
  Band bands_[kPriorityBands];
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace rlim::sched
