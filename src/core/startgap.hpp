#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "plim/program.hpp"

namespace rlim::core {

/// Start-Gap wear leveling (Qureshi et al., MICRO 2009 — the paper's
/// reference [8]): a *runtime, memory-level* alternative to the paper's
/// compile-time write balancing, implemented here as an ablation baseline.
///
/// N logical lines live in N+1 physical lines with one roving gap. Every
/// `gap_interval` writes the gap moves one slot (costing one extra physical
/// write); after a full revolution the start pointer advances, slowly
/// rotating the logical-to-physical mapping underneath the traffic.
class StartGapRemapper {
public:
  StartGapRemapper(std::size_t num_logical, std::size_t gap_interval);

  /// Current logical → physical mapping (a bijection into the N+1 slots
  /// that skips the gap).
  [[nodiscard]] std::size_t physical(std::size_t logical) const;

  /// Accounts one logical write; returns the physical cell written.
  /// Periodically triggers a gap move (recorded in `gap_move_writes`).
  std::size_t on_write(std::size_t logical);

  [[nodiscard]] std::size_t num_physical() const { return num_logical_ + 1; }
  [[nodiscard]] std::size_t gap_position() const { return gap_; }
  [[nodiscard]] std::size_t start() const { return start_; }
  /// Extra writes spent moving the gap (the scheme's overhead traffic).
  [[nodiscard]] std::uint64_t gap_move_writes() const { return gap_move_writes_; }

private:
  void move_gap();

  std::size_t num_logical_;
  std::size_t gap_interval_;
  std::size_t gap_;
  std::size_t start_ = 0;
  std::size_t writes_since_move_ = 0;
  std::uint64_t gap_move_writes_ = 0;
};

/// Destination sequence of a program — the write trace Start-Gap would see.
[[nodiscard]] std::vector<plim::Cell> write_trace(const plim::Program& program);

/// Replays a write trace through Start-Gap; returns per-physical-cell write
/// counts (size num_cells + 1), including gap-move overhead writes.
[[nodiscard]] std::vector<std::uint64_t> replay_with_start_gap(
    std::span<const plim::Cell> trace, std::size_t num_cells,
    std::size_t gap_interval);

}  // namespace rlim::core
