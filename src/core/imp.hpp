#pragma once

#include <cstdint>

#include "mig/mig.hpp"
#include "util/stats.hpp"

namespace rlim::core {

/// Wear model of IMPLY-based in-memory computing (paper §II).
///
/// The stateful-implication NAND gate [16] computes NAND(p, q) in three
/// steps — FALSE(s); p IMP s; q IMP s — all three writing the same work
/// device s. Synthesis schemes in the style of [17] use a fixed small pool
/// of work devices beside the N input devices, so the write traffic
/// concentrates entirely on the pool. This module decomposes an MIG into a
/// NAND netlist and charges the resulting writes round-robin across the
/// pool: a *wear accounting* model (not a functional simulator) that
/// reproduces the §II observation that IMP work devices "suffer from short
/// lifetime" relative to PLiM's spread-out RM3 traffic.
struct ImpOptions {
  /// Size of the work-device pool ([17] shows two suffice).
  unsigned work_devices = 2;
};

struct ImpReport {
  std::size_t input_devices = 0;   ///< PI devices (pre-loaded, zero writes)
  std::size_t work_devices = 0;
  std::size_t nand_gates = 0;      ///< NAND2 count after decomposition
  std::size_t operations = 0;      ///< 3 per NAND (FALSE + 2 × IMP)
  util::WriteStats writes;         ///< over input + work devices
};

/// Counts NAND gates of the decomposition:
///   maj(a,b,c) → 6 NAND2 (three pairwise NANDs, AND-recombine, final NAND)
///   complemented non-constant edge → 1 NAND2 (NOT via NAND(v,v))
/// and accumulates 3 writes per NAND on the round-robin work pool.
[[nodiscard]] ImpReport imp_wear(const mig::Mig& graph, ImpOptions options = {});

}  // namespace rlim::core
