#include "core/config.hpp"

#include <array>
#include <charconv>

#include "fault/fault.hpp"
#include "mig/rewriting.hpp"
#include "pass/pass.hpp"
#include "plim/allocator.hpp"
#include "plim/selector.hpp"
#include "util/enum_names.hpp"
#include "util/error.hpp"

namespace rlim::core {

namespace {

constexpr util::EnumTable kStrategyNames{
    std::string_view("strategy"),
    std::array{
        util::EnumName<Strategy>{Strategy::Naive, "naive"},
        util::EnumName<Strategy>{Strategy::Plim21, "plim21-compiler"},
        util::EnumName<Strategy>{Strategy::MinWrite, "min-write"},
        util::EnumName<Strategy>{Strategy::MinWriteEnduranceRewrite,
                                 "min-write+endurance-rewrite"},
        util::EnumName<Strategy>{Strategy::FullEndurance, "full-endurance"},
    }};

/// The single source of the short preset aliases (CLI / spec-grammar names);
/// parse_strategy consults this before the long names above.
constexpr std::array<std::pair<std::string_view, Strategy>, 5> kAliases{{
    {"naive", Strategy::Naive},
    {"plim21", Strategy::Plim21},
    {"min-write", Strategy::MinWrite},
    {"endurance-rewrite", Strategy::MinWriteEnduranceRewrite},
    {"full", Strategy::FullEndurance},
}};

/// True iff `rest` (the text following a comma) starts a new config clause:
/// a known field name immediately followed by '='. Policy parameter values
/// may themselves contain commas (the seq flow's `passes=maj,dist,...`
/// list), so a comma alone does not separate clauses — only a comma followed
/// by `field=`. Pass keys are [a-z0-9_]+ identifiers distinct from the five
/// field names, so the two grammars cannot collide.
bool starts_clause(std::string_view rest) {
  const auto delim = rest.find_first_of("=,:");
  if (delim == std::string_view::npos || rest[delim] != '=') {
    return false;
  }
  const auto field = rest.substr(0, delim);
  return field == "rewrite" || field == "select" || field == "alloc" ||
         field == "fault" || field == "cap";
}

std::uint64_t parse_cap(std::string_view text, std::string_view spec) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                         value);
  require(ec == std::errc() && ptr == text.data() + text.size(),
          "config spec '" + std::string(spec) + "': cap '" + std::string(text) +
              "' is not an unsigned integer");
  require(value >= 3, "config spec '" + std::string(spec) + "': cap " +
                          std::string(text) +
                          " is below 3 (the compiler's copy idioms need up to "
                          "3 writes on one cell)");
  return value;
}

}  // namespace

std::string to_string(Strategy strategy) {
  return std::string(kStrategyNames.name(strategy));
}

Strategy parse_strategy(std::string_view name) {
  for (const auto& [alias, strategy] : kAliases) {
    if (alias == name) {
      return strategy;
    }
  }
  return kStrategyNames.parse(name);
}

std::span<const std::pair<std::string_view, Strategy>> strategy_aliases() {
  return kAliases;
}

std::string_view strategy_alias(Strategy strategy) {
  for (const auto& [alias, value] : kAliases) {
    if (value == strategy) {
      return alias;
    }
  }
  throw Error("strategy_alias: unknown strategy");
}

int PipelineConfig::effort() const {
  const auto it = rewrite.params.find("effort");
  if (it == rewrite.params.end()) {
    return 0;
  }
  return util::param_int(rewrite.params, "effort");
}

void PipelineConfig::set_effort(int effort) {
  for (const auto& param : mig::rewrites().describe(rewrite.key).params) {
    if (param.name == "effort") {
      rewrite.params["effort"] = std::to_string(effort);
      return;
    }
  }
  // Flow without an effort knob (e.g. "none") — nothing to set.
}

std::string PipelineConfig::canonical_key() const {
  std::string key = "rewrite=" + rewrite.canonical() +
                    ",select=" + selection.canonical() +
                    ",alloc=" + allocation.canonical();
  // rlim::fault:: in full — the `fault` member shadows the namespace here.
  if (rlim::fault::active(fault)) {
    key += ",fault=" + fault.canonical();
  }
  if (max_writes) {
    key += ",cap=" + std::to_string(*max_writes);
  }
  return key;
}

PipelineConfig PipelineConfig::normalized() const {
  rlim::fault::ensure_registered();
  rlim::pass::ensure_registered();
  PipelineConfig out = *this;
  out.rewrite = mig::rewrites().normalize(rewrite);
  out.selection = plim::selectors().normalize(selection);
  out.allocation = plim::allocators().normalize(allocation);
  out.fault = rlim::fault::models().normalize(fault);
  if (out.max_writes) {
    require(*out.max_writes >= 3,
            "PipelineConfig: max_writes cap must be at least 3 (the "
            "compiler's copy idioms need up to 3 writes on one cell)");
  }
  return out;
}

PipelineConfig PipelineConfig::parse(std::string_view spec) {
  require(!spec.empty(), "config spec is empty");
  PipelineConfig config;
  bool first = true;
  bool seen_rewrite = false;
  bool seen_select = false;
  bool seen_alloc = false;
  bool seen_fault = false;
  bool seen_cap = false;

  std::size_t start = 0;
  while (start <= spec.size()) {
    // The next clause-separating comma — commas inside a parameter value
    // (e.g. rewrite=seq:passes=maj,dist,...) belong to the clause.
    auto end = spec.find(',', start);
    while (end != std::string_view::npos &&
           !starts_clause(spec.substr(end + 1))) {
      end = spec.find(',', end + 1);
    }
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const auto clause = spec.substr(start, end - start);
    const auto eq = clause.find('=');
    if (eq == std::string_view::npos) {
      // A bare token is a preset alias — only allowed as the first clause.
      require(first, "config spec '" + std::string(spec) + "': preset alias '" +
                         std::string(clause) + "' must come first");
      bool found = false;
      for (const auto& [alias, strategy] : kAliases) {
        if (alias == clause) {
          config = make_config(strategy);
          found = true;
          break;
        }
      }
      if (!found) {
        std::string aliases;
        for (const auto& [alias, strategy] : kAliases) {
          (void)strategy;
          if (!aliases.empty()) {
            aliases += ", ";
          }
          aliases += alias;
        }
        throw Error("config spec '" + std::string(spec) + "': '" +
                    std::string(clause) +
                    "' is neither a field=value clause nor a preset alias (" +
                    aliases + ")");
      }
    } else {
      const auto field = clause.substr(0, eq);
      const auto value = clause.substr(eq + 1);
      const auto claim = [&](bool& seen) {
        require(!seen, "config spec '" + std::string(spec) + "': duplicate '" +
                           std::string(field) + "' clause");
        seen = true;
      };
      if (field == "rewrite") {
        claim(seen_rewrite);
        config.rewrite = util::PolicySpec::parse(value);
      } else if (field == "select") {
        claim(seen_select);
        config.selection = util::PolicySpec::parse(value);
      } else if (field == "alloc") {
        claim(seen_alloc);
        config.allocation = util::PolicySpec::parse(value);
      } else if (field == "fault") {
        claim(seen_fault);
        config.fault = util::PolicySpec::parse(value);
      } else if (field == "cap") {
        claim(seen_cap);
        config.max_writes = parse_cap(value, spec);
      } else {
        throw Error("config spec '" + std::string(spec) + "': unknown field '" +
                    std::string(field) +
                    "' (expected rewrite, select, alloc, fault, cap)");
      }
    }
    first = false;
    if (end == spec.size()) {
      break;
    }
    start = end + 1;
  }

  config = config.normalized();
  // Constructing each policy validates parameter values up front, so a bad
  // spec fails here with a clear message instead of deep inside a batch.
  (void)mig::make_rewrite(config.rewrite);
  (void)plim::make_selector(config.selection);
  (void)plim::make_allocator(config.allocation);
  (void)rlim::fault::make_sweep(config.fault);
  return config;
}

PipelineConfig make_config(Strategy strategy,
                           std::optional<std::uint64_t> max_writes) {
  PipelineConfig config;
  config.max_writes = max_writes;
  switch (strategy) {
    case Strategy::Naive:
      config.rewrite = {"none", {}};
      config.selection = {"naive", {}};
      config.allocation = {"lifo", {}};
      break;
    case Strategy::Plim21:
      config.rewrite = {"plim21", {}};
      config.selection = {"plim21", {}};
      // [21] does not publish its free-list discipline; we model it as a
      // rotating scan over the free devices (round-robin), distinct from the
      // worst-case LIFO of the naive baseline and from this paper's
      // min-write strategy. See EXPERIMENTS.md for the sensitivity of the
      // Table-I "[21]" column to this choice.
      config.allocation = {"round_robin", {}};
      break;
    case Strategy::MinWrite:
      config.rewrite = {"plim21", {}};
      config.selection = {"plim21", {}};
      config.allocation = {"min_write", {}};
      break;
    case Strategy::MinWriteEnduranceRewrite:
      config.rewrite = {"endurance", {}};
      config.selection = {"plim21", {}};
      config.allocation = {"min_write", {}};
      break;
    case Strategy::FullEndurance:
      config.rewrite = {"endurance", {}};
      config.selection = {"endurance", {}};
      config.allocation = {"min_write", {}};
      break;
  }
  return config.normalized();
}

}  // namespace rlim::core
