#include "core/startgap.hpp"

#include "util/error.hpp"

namespace rlim::core {

StartGapRemapper::StartGapRemapper(std::size_t num_logical,
                                   std::size_t gap_interval)
    : num_logical_(num_logical), gap_interval_(gap_interval), gap_(num_logical) {
  require(num_logical >= 1, "StartGapRemapper: need at least one line");
  require(gap_interval >= 1, "StartGapRemapper: interval must be positive");
}

std::size_t StartGapRemapper::physical(std::size_t logical) const {
  require(logical < num_logical_, "StartGapRemapper: logical address out of range");
  const auto slots = num_logical_ + 1;
  // Logical lines occupy the cyclic sequence starting at `start_`, skipping
  // the gap slot: addresses at or past the gap shift by one.
  const auto gap_offset = (gap_ + slots - start_) % slots;
  const auto base = (start_ + logical) % slots;
  if (logical >= gap_offset) {
    return (base + 1) % slots;
  }
  return base;
}

void StartGapRemapper::move_gap() {
  const auto slots = num_logical_ + 1;
  const auto new_gap = (gap_ + slots - 1) % slots;
  // The line in the slot below the gap moves into the gap slot: one write.
  ++gap_move_writes_;
  gap_ = new_gap;
  if (gap_ == num_logical_) {
    // Full revolution: rotate the whole mapping by one.
    start_ = (start_ + 1) % slots;
  }
}

std::size_t StartGapRemapper::on_write(std::size_t logical) {
  const auto target = physical(logical);
  if (++writes_since_move_ >= gap_interval_) {
    writes_since_move_ = 0;
    move_gap();
  }
  return target;
}

std::vector<plim::Cell> write_trace(const plim::Program& program) {
  std::vector<plim::Cell> trace;
  trace.reserve(program.size());
  for (const auto& instruction : program.instructions()) {
    trace.push_back(instruction.z);
  }
  return trace;
}

std::vector<std::uint64_t> replay_with_start_gap(std::span<const plim::Cell> trace,
                                                 std::size_t num_cells,
                                                 std::size_t gap_interval) {
  require(num_cells >= 1, "replay_with_start_gap: need at least one cell");
  StartGapRemapper remapper(num_cells, gap_interval);
  std::vector<std::uint64_t> counts(num_cells + 1, 0);
  for (const auto logical : trace) {
    require(logical < num_cells, "replay_with_start_gap: trace address out of range");
    const auto before_gap = remapper.gap_position();
    ++counts[remapper.on_write(logical)];
    if (remapper.gap_position() != before_gap) {
      ++counts[before_gap];  // the gap-move copy wrote the old gap slot
    }
  }
  return counts;
}

}  // namespace rlim::core
