#include "core/imp.hpp"

#include <vector>

#include "util/error.hpp"

namespace rlim::core {

ImpReport imp_wear(const mig::Mig& graph, ImpOptions options) {
  require(options.work_devices >= 1, "imp_wear: need at least one work device");

  ImpReport report;
  report.input_devices = graph.num_pis();
  report.work_devices = options.work_devices;

  const auto reachable = graph.reachable_from_pos();
  std::size_t nands = 0;
  for (std::uint32_t gate = graph.first_gate(); gate < graph.num_nodes(); ++gate) {
    if (!reachable[gate]) {
      continue;
    }
    nands += 6;  // maj(a,b,c) = NAND(AND(NAND(a,b), NAND(a,c)... ) — 6 NAND2
    nands += static_cast<std::size_t>(graph.complement_count(gate));
  }
  for (const auto po : graph.pos()) {
    if (!po.is_constant() && po.is_complemented()) {
      ++nands;
    }
  }
  report.nand_gates = nands;
  report.operations = 3 * nands;

  // 3 writes per NAND, round-robin over the work pool; inputs pre-loaded.
  std::vector<std::uint64_t> writes(report.input_devices + options.work_devices, 0);
  for (std::size_t i = 0; i < nands; ++i) {
    writes[report.input_devices + (i % options.work_devices)] += 3;
  }
  report.writes = util::compute_stats(writes);
  return report;
}

}  // namespace rlim::core
