#pragma once

#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "mig/rewriting.hpp"
#include "pass/pass.hpp"
#include "plim/allocator.hpp"
#include "plim/selector.hpp"

/// Unified, string-keyed view over the policy registries behind a
/// core::PipelineConfig — the discovery surface of the pluggable-policy API
/// (`rlim policies` renders it). Kinds are named after the config-spec
/// grammar fields: "rewrite" (mig::rewrites()), "select" (plim::selectors()),
/// "alloc" (plim::allocators()), "fault" (fault::models()) — plus "pass"
/// (pass::passes()), the building blocks of the `rewrite=seq:` flow, listed
/// right after "rewrite" since passes configure that dimension.
namespace rlim::registry {

/// The policy dimensions of a PipelineConfig, in spec-grammar field order
/// ("pass" follows "rewrite", the field its entries plug into).
[[nodiscard]] std::vector<std::string_view> kinds();

/// Every registered policy of one kind, sorted by key (throws rlim::Error
/// for an unknown kind).
[[nodiscard]] std::vector<util::PolicyInfo> list(std::string_view kind);

/// Metadata of one policy (throws for unknown kind or key).
[[nodiscard]] const util::PolicyInfo& describe(std::string_view kind,
                                               std::string_view key);

/// Typed `make`: normalize `spec` against the kind's registry and
/// factory-construct the policy, validating key and parameter values.
[[nodiscard]] mig::RewriteFn make_rewrite(const util::PolicySpec& spec);
[[nodiscard]] pass::PassPtr make_pass(const util::PolicySpec& spec);
[[nodiscard]] plim::SelectorPtr make_selector(const util::PolicySpec& spec);
[[nodiscard]] plim::AllocatorPtr make_allocator(const util::PolicySpec& spec);
[[nodiscard]] fault::SweepSpec make_sweep(const util::PolicySpec& spec);

}  // namespace rlim::registry
