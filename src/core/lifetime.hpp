#pragma once

#include <cstdint>
#include <vector>

#include "mig/mig.hpp"
#include "plim/program.hpp"
#include "plim/rram_array.hpp"
#include "util/stats.hpp"

namespace rlim::core {

/// Architecture-lifetime projection from a write distribution — the paper's
/// motivation made quantitative: with a per-cell endurance E (~1e10 [5] to
/// ~1e11 [6]), the most-written cell bounds how often the PLiM computer can
/// execute the program before the first hard failure.
struct LifetimeEstimate {
  /// floor(E / max_writes): guaranteed-safe executions.
  std::uint64_t executions_to_first_failure = 0;
  /// E / mean_writes: executions if the same total traffic were spread
  /// perfectly evenly (the wear-leveling upper bound).
  double ideal_executions = 0.0;
  /// executions_to_first_failure / ideal_executions ∈ (0, 1]: how much of
  /// the ideal lifetime the write balance actually achieves.
  double balance_efficiency = 0.0;
};

[[nodiscard]] LifetimeEstimate estimate_lifetime(
    const util::WriteStats& writes, std::uint64_t cell_endurance = 10'000'000'000ULL);

/// Empirical cross-check: repeatedly executes `program` on an array with the
/// given (tiny) endurance limit and verifies the outputs against `reference`
/// each time. Returns the number of fully correct executions before the
/// first observed wrong output (or `max_runs` if none failed).
/// Guaranteed to be >= estimate_lifetime(...).executions_to_first_failure:
/// a stuck cell only matters once its stuck value is actually wrong.
[[nodiscard]] std::uint64_t measured_executions_until_failure(
    const plim::Program& program, const mig::Mig& reference,
    std::uint64_t cell_endurance, std::uint64_t max_runs, std::uint64_t seed);

/// Same measurement on a caller-provided (possibly variability-configured,
/// possibly pre-aged) array.
[[nodiscard]] std::uint64_t measured_executions_until_failure_on(
    plim::RramArray& array, const plim::Program& program,
    const mig::Mig& reference, std::uint64_t max_runs, std::uint64_t seed);

/// Monte-Carlo lifetime study under cell-to-cell endurance variability:
/// `trials` arrays with log-normal per-cell limits (median `cell_endurance`,
/// sigma `endurance_sigma`), each executed until the first wrong output.
struct VariabilityStudy {
  std::vector<std::uint64_t> lifetimes;  ///< per-trial executions (sorted)
  std::uint64_t min = 0;
  std::uint64_t median = 0;
  double mean = 0.0;
};

/// Per-trial variability and input streams derive from `seed` via
/// util::mix_seed(seed, trial), so trials are independent and studies with
/// nearby base seeds never share a variability draw.
[[nodiscard]] VariabilityStudy lifetime_under_variability(
    const plim::Program& program, const mig::Mig& reference,
    std::uint64_t cell_endurance, double endurance_sigma, unsigned trials,
    std::uint64_t max_runs, std::uint64_t seed);

}  // namespace rlim::core
