#include "core/registry.hpp"

#include "util/error.hpp"

namespace rlim::registry {

namespace {

/// Every facade entry point registers the lazily-added policies first, so
/// discovery always sees the full set regardless of call order.
void ensure_registered() {
  fault::ensure_registered();
  pass::ensure_registered();
}

}  // namespace

std::vector<std::string_view> kinds() {
  return {"rewrite", "pass", "select", "alloc", "fault"};
}

std::vector<util::PolicyInfo> list(std::string_view kind) {
  ensure_registered();
  if (kind == "rewrite") {
    return mig::rewrites().list();
  }
  if (kind == "pass") {
    return pass::passes().list();
  }
  if (kind == "select") {
    return plim::selectors().list();
  }
  if (kind == "alloc") {
    return plim::allocators().list();
  }
  if (kind == "fault") {
    return fault::models().list();
  }
  throw Error("unknown policy kind '" + std::string(kind) +
              "' (expected rewrite, pass, select, alloc, fault)");
}

const util::PolicyInfo& describe(std::string_view kind, std::string_view key) {
  ensure_registered();
  if (kind == "rewrite") {
    return mig::rewrites().describe(key);
  }
  if (kind == "pass") {
    return pass::passes().describe(key);
  }
  if (kind == "select") {
    return plim::selectors().describe(key);
  }
  if (kind == "alloc") {
    return plim::allocators().describe(key);
  }
  if (kind == "fault") {
    return fault::models().describe(key);
  }
  throw Error("unknown policy kind '" + std::string(kind) +
              "' (expected rewrite, pass, select, alloc, fault)");
}

mig::RewriteFn make_rewrite(const util::PolicySpec& spec) {
  ensure_registered();
  return mig::make_rewrite(spec);
}

pass::PassPtr make_pass(const util::PolicySpec& spec) {
  ensure_registered();
  return pass::make_pass(spec);
}

plim::SelectorPtr make_selector(const util::PolicySpec& spec) {
  return plim::make_selector(spec);
}

plim::AllocatorPtr make_allocator(const util::PolicySpec& spec) {
  ensure_registered();
  return plim::make_allocator(spec);
}

fault::SweepSpec make_sweep(const util::PolicySpec& spec) {
  return fault::make_sweep(spec);
}

}  // namespace rlim::registry
