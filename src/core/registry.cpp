#include "core/registry.hpp"

#include "util/error.hpp"

namespace rlim::registry {

std::vector<std::string_view> kinds() {
  return {"rewrite", "select", "alloc", "fault"};
}

std::vector<util::PolicyInfo> list(std::string_view kind) {
  fault::ensure_registered();
  if (kind == "rewrite") {
    return mig::rewrites().list();
  }
  if (kind == "select") {
    return plim::selectors().list();
  }
  if (kind == "alloc") {
    return plim::allocators().list();
  }
  if (kind == "fault") {
    return fault::models().list();
  }
  throw Error("unknown policy kind '" + std::string(kind) +
              "' (expected rewrite, select, alloc, fault)");
}

const util::PolicyInfo& describe(std::string_view kind, std::string_view key) {
  fault::ensure_registered();
  if (kind == "rewrite") {
    return mig::rewrites().describe(key);
  }
  if (kind == "select") {
    return plim::selectors().describe(key);
  }
  if (kind == "alloc") {
    return plim::allocators().describe(key);
  }
  if (kind == "fault") {
    return fault::models().describe(key);
  }
  throw Error("unknown policy kind '" + std::string(kind) +
              "' (expected rewrite, select, alloc, fault)");
}

mig::RewriteFn make_rewrite(const util::PolicySpec& spec) {
  return mig::make_rewrite(spec);
}

plim::SelectorPtr make_selector(const util::PolicySpec& spec) {
  return plim::make_selector(spec);
}

plim::AllocatorPtr make_allocator(const util::PolicySpec& spec) {
  fault::ensure_registered();
  return plim::make_allocator(spec);
}

fault::SweepSpec make_sweep(const util::PolicySpec& spec) {
  return fault::make_sweep(spec);
}

}  // namespace rlim::registry
