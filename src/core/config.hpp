#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "util/spec.hpp"

namespace rlim::core {

/// The incremental endurance-management configurations evaluated in the
/// paper (Table I columns; FullEndurance + max_writes gives Table III).
/// Each strategy is a preset alias over the registry-keyed PipelineConfig.
enum class Strategy {
  /// Node translation only: no MIG rewriting, creation-order selection,
  /// LIFO cell reuse. The paper's baseline.
  Naive,
  /// The PLiM compiler of [21]: Algorithm 1 rewriting + area-greedy node
  /// selection (still LIFO reuse).
  Plim21,
  /// + the minimum write count strategy (least-written free cell first).
  MinWrite,
  /// + endurance-aware MIG rewriting (Algorithm 2 replaces Algorithm 1).
  MinWriteEnduranceRewrite,
  /// + endurance-aware node selection (Algorithm 3) — the full flow.
  FullEndurance,
};

[[nodiscard]] std::string to_string(Strategy strategy);
/// Inverse of to_string; also accepts the short preset aliases ("naive",
/// "plim21", "min-write", "endurance-rewrite", "full"). Throws rlim::Error.
[[nodiscard]] Strategy parse_strategy(std::string_view name);

/// Preset alias -> strategy table, in paper column order (the spec-grammar
/// and CLI names).
[[nodiscard]] std::span<const std::pair<std::string_view, Strategy>>
strategy_aliases();
/// Short preset alias of a strategy ("naive", ..., "full").
[[nodiscard]] std::string_view strategy_alias(Strategy strategy);

/// Everything needed to run one pipeline, as string-keyed policy specs:
/// rewriting flow (mig::rewrites()), node-selection policy
/// (plim::selectors()), allocation policy (plim::allocators()), fault
/// scenario (fault::models(); `none` = no sweep), and the optional
/// maximum-write cap.
///
/// Configs built by make_config() or parse() are *normalized* — every
/// declared policy parameter is filled in (e.g. `effort=5`) — so equality is
/// semantic and canonical_key() is unique per behavior. Hand-assembled
/// configs can call normalized() to reach the same form.
struct PipelineConfig {
  util::PolicySpec rewrite{"none", {}};
  util::PolicySpec selection{"naive", {}};
  util::PolicySpec allocation{"lifo", {}};
  /// Fault scenario for the Monte-Carlo lifetime sweep; `none` (the
  /// default) runs no sweep and keeps canonical_key() byte-identical to
  /// pre-fault configs.
  util::PolicySpec fault{"none", {}};
  std::optional<std::uint64_t> max_writes;

  /// Rewriting effort — the `effort` parameter of the rewrite spec (0 when
  /// the flow does not declare one, e.g. `none`).
  [[nodiscard]] int effort() const;
  /// Sets the rewrite flow's effort parameter; ignored when the flow does
  /// not declare one.
  void set_effort(int effort);

  /// Canonical spec string, the program-cache key:
  ///   rewrite=endurance:effort=5,select=endurance,alloc=min_write,cap=100
  /// Fields in fixed order, policy parameters sorted by name; `cap` is
  /// omitted when unset and `fault` when it is `none`, so pre-fault keys
  /// (and the five paper presets) are unchanged.
  /// parse(canonical_key()) reproduces the config.
  [[nodiscard]] std::string canonical_key() const;

  /// The config with every policy validated against its registry and every
  /// declared parameter filled with its default.
  [[nodiscard]] PipelineConfig normalized() const;

  /// Parses a config spec: comma-separated `field=value` clauses with
  /// fields `rewrite`, `select`, `alloc`, `fault` (policy specs, see
  /// util::PolicySpec) and `cap` (unsigned, >= 3). The first clause may be
  /// a bare preset alias (see strategy_aliases()), which later clauses
  /// override:
  ///   full
  ///   full,cap=100
  ///   full,fault=stuck:rate=1e-4:seed=7:trials=32
  ///   rewrite=endurance:effort=5,select=wear_quota:quota=4,alloc=start_gap
  ///   rewrite=seq:passes=maj,dist,inv,inv3,select=endurance,alloc=min_write
  /// A comma separates clauses only when followed by `field=`; otherwise it
  /// belongs to the current policy parameter value, as in the seq flow's
  /// pass list above. Every policy is validated against its registry
  /// (unknown keys and parameters are hard errors).
  [[nodiscard]] static PipelineConfig parse(std::string_view spec);

  bool operator==(const PipelineConfig&) const = default;
};

/// Maps a strategy preset to its (normalized) pipeline configuration.
[[nodiscard]] PipelineConfig make_config(
    Strategy strategy, std::optional<std::uint64_t> max_writes = std::nullopt);

}  // namespace rlim::core
