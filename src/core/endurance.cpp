#include "core/endurance.hpp"

#include "util/error.hpp"

namespace rlim::core {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::Naive: return "naive";
    case Strategy::Plim21: return "plim21-compiler";
    case Strategy::MinWrite: return "min-write";
    case Strategy::MinWriteEnduranceRewrite: return "min-write+endurance-rewrite";
    case Strategy::FullEndurance: return "full-endurance";
  }
  return "?";
}

PipelineConfig make_config(Strategy strategy,
                           std::optional<std::uint64_t> max_writes) {
  PipelineConfig config;
  config.max_writes = max_writes;
  switch (strategy) {
    case Strategy::Naive:
      config.rewrite = mig::RewriteKind::None;
      config.selection = plim::SelectionPolicy::NaiveOrder;
      config.allocation = plim::AllocPolicy::Lifo;
      break;
    case Strategy::Plim21:
      config.rewrite = mig::RewriteKind::Plim21;
      config.selection = plim::SelectionPolicy::Plim21;
      // [21] does not publish its free-list discipline; we model it as a
      // rotating scan over the free devices (round-robin), distinct from the
      // worst-case LIFO of the naive baseline and from this paper's
      // min-write strategy. See EXPERIMENTS.md for the sensitivity of the
      // Table-I "[21]" column to this choice.
      config.allocation = plim::AllocPolicy::RoundRobin;
      break;
    case Strategy::MinWrite:
      config.rewrite = mig::RewriteKind::Plim21;
      config.selection = plim::SelectionPolicy::Plim21;
      config.allocation = plim::AllocPolicy::MinWrite;
      break;
    case Strategy::MinWriteEnduranceRewrite:
      config.rewrite = mig::RewriteKind::Endurance;
      config.selection = plim::SelectionPolicy::Plim21;
      config.allocation = plim::AllocPolicy::MinWrite;
      break;
    case Strategy::FullEndurance:
      config.rewrite = mig::RewriteKind::Endurance;
      config.selection = plim::SelectionPolicy::EnduranceAware;
      config.allocation = plim::AllocPolicy::MinWrite;
      break;
  }
  return config;
}

mig::Mig prepare(const mig::Mig& graph, const PipelineConfig& config) {
  return mig::rewrite(graph, config.rewrite, config.effort);
}

EnduranceReport compile_prepared(const mig::Mig& prepared,
                                 const PipelineConfig& config,
                                 std::string benchmark_name,
                                 std::size_t gates_before) {
  plim::CompilerOptions options;
  options.selection = config.selection;
  options.allocation = config.allocation;
  options.max_writes = config.max_writes;
  auto compiled = plim::PlimCompiler(options).compile(prepared);

  EnduranceReport report;
  report.benchmark = std::move(benchmark_name);
  report.config = config;
  report.instructions = compiled.num_instructions();
  report.rrams = compiled.num_cells;
  report.writes = compiled.write_stats;
  report.gates_before_rewrite = gates_before != 0 ? gates_before : prepared.num_gates();
  report.gates_after_rewrite = prepared.num_gates();
  report.program = std::move(compiled.program);
  return report;
}

EnduranceReport run_pipeline(const mig::Mig& graph, const PipelineConfig& config,
                             std::string benchmark_name) {
  const auto prepared = prepare(graph, config);
  return compile_prepared(prepared, config, std::move(benchmark_name),
                          graph.num_gates());
}

double stdev_improvement(const EnduranceReport& baseline,
                         const EnduranceReport& ours) {
  return util::improvement_percent(baseline.writes.stdev, ours.writes.stdev);
}

}  // namespace rlim::core
