#include "core/endurance.hpp"

#include "util/error.hpp"

namespace rlim::core {

mig::Mig prepare(const mig::Mig& graph, const PipelineConfig& config) {
  return mig::make_rewrite(config.rewrite)(graph, nullptr);
}

EnduranceReport compile_prepared(const mig::Mig& prepared,
                                 const PipelineConfig& config,
                                 std::string benchmark_name,
                                 std::size_t gates_before) {
  plim::CompilerOptions options;
  options.selector = [spec = config.selection] {
    return plim::make_selector(spec);
  };
  options.allocator = [spec = config.allocation] {
    return plim::make_allocator(spec);
  };
  options.max_writes = config.max_writes;
  auto compiled = plim::PlimCompiler(options).compile(prepared);

  EnduranceReport report;
  report.benchmark = std::move(benchmark_name);
  report.config = config;
  report.instructions = compiled.num_instructions();
  report.rrams = compiled.num_cells;
  report.writes = compiled.write_stats;
  report.gates_before_rewrite = gates_before != 0 ? gates_before : prepared.num_gates();
  report.gates_after_rewrite = prepared.num_gates();
  report.program = std::move(compiled.program);
  // compile_prepared is the single compile site (Runner, Service, CLI, and
  // the net server all funnel through it), so running the sweep here makes
  // every entry point fault-aware — and the distribution is cached alongside
  // the program in the pipeline cache and disk store.
  const auto sweep = fault::make_sweep(config.fault);
  if (sweep.enabled) {
    report.fault_sweep = fault::run_sweep(report.program, prepared, sweep);
  }
  return report;
}

EnduranceReport run_pipeline(const mig::Mig& graph, const PipelineConfig& config,
                             std::string benchmark_name) {
  const auto prepared = prepare(graph, config);
  return compile_prepared(prepared, config, std::move(benchmark_name),
                          graph.num_gates());
}

double stdev_improvement(const EnduranceReport& baseline,
                         const EnduranceReport& ours) {
  return util::improvement_percent(baseline.writes.stdev, ours.writes.stdev);
}

}  // namespace rlim::core
