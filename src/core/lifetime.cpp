#include "core/lifetime.hpp"

#include <algorithm>
#include <vector>

#include "mig/simulate.hpp"
#include "plim/controller.hpp"
#include "plim/rram_array.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rlim::core {

LifetimeEstimate estimate_lifetime(const util::WriteStats& writes,
                                   std::uint64_t cell_endurance) {
  require(cell_endurance > 0, "estimate_lifetime: endurance must be positive");
  LifetimeEstimate estimate;
  if (writes.max == 0) {
    // The program never writes: it lives forever; report the endurance
    // itself as a conservative stand-in for "unbounded".
    estimate.executions_to_first_failure = cell_endurance;
    estimate.ideal_executions = static_cast<double>(cell_endurance);
    estimate.balance_efficiency = 1.0;
    return estimate;
  }
  estimate.executions_to_first_failure = cell_endurance / writes.max;
  estimate.ideal_executions =
      writes.mean > 0.0 ? static_cast<double>(cell_endurance) / writes.mean : 0.0;
  estimate.balance_efficiency =
      estimate.ideal_executions > 0.0
          ? static_cast<double>(estimate.executions_to_first_failure) /
                estimate.ideal_executions
          : 0.0;
  return estimate;
}

std::uint64_t measured_executions_until_failure_on(plim::RramArray& array,
                                                   const plim::Program& program,
                                                   const mig::Mig& reference,
                                                   std::uint64_t max_runs,
                                                   std::uint64_t seed) {
  require(program.pi_cells().size() == reference.num_pis() &&
              program.po_cells().size() == reference.num_pos(),
          "measured_executions_until_failure: profile mismatch");
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> pi_values(reference.num_pis());
  for (std::uint64_t run = 0; run < max_runs; ++run) {
    for (auto& word : pi_values) {
      word = rng();
    }
    const auto actual = plim::evaluate(program, pi_values, &array);
    if (actual != mig::simulate(reference, pi_values)) {
      return run;
    }
  }
  return max_runs;
}

std::uint64_t measured_executions_until_failure(const plim::Program& program,
                                                const mig::Mig& reference,
                                                std::uint64_t cell_endurance,
                                                std::uint64_t max_runs,
                                                std::uint64_t seed) {
  plim::RramArray array(program.num_cells(),
                        plim::RramConfig{.endurance_limit = cell_endurance});
  return measured_executions_until_failure_on(array, program, reference, max_runs,
                                              seed);
}

VariabilityStudy lifetime_under_variability(const plim::Program& program,
                                            const mig::Mig& reference,
                                            std::uint64_t cell_endurance,
                                            double endurance_sigma,
                                            unsigned trials,
                                            std::uint64_t max_runs,
                                            std::uint64_t seed) {
  require(trials >= 1, "lifetime_under_variability: need at least one trial");
  VariabilityStudy study;
  for (unsigned trial = 0; trial < trials; ++trial) {
    // mix_seed, not `seed + trial`: additive derivation makes (seed 5,
    // trial 1) and (seed 6, trial 0) draw identical per-cell limits, so
    // sweeps over nearby job seeds silently replay the same weak cells.
    plim::RramArray array(
        program.num_cells(),
        plim::RramConfig{.endurance_limit = cell_endurance,
                         .endurance_sigma = endurance_sigma,
                         .variation_seed = util::mix_seed(seed, trial)});
    study.lifetimes.push_back(measured_executions_until_failure_on(
        array, program, reference, max_runs, util::mix_seed(~seed, trial)));
  }
  std::sort(study.lifetimes.begin(), study.lifetimes.end());
  study.min = study.lifetimes.front();
  study.median = study.lifetimes[study.lifetimes.size() / 2];
  double total = 0.0;
  for (const auto lifetime : study.lifetimes) {
    total += static_cast<double>(lifetime);
  }
  study.mean = total / static_cast<double>(study.lifetimes.size());
  return study;
}

}  // namespace rlim::core
