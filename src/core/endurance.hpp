#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "fault/sweep.hpp"
#include "mig/mig.hpp"
#include "mig/rewriting.hpp"
#include "plim/compiler.hpp"
#include "util/stats.hpp"

namespace rlim::core {

/// Result of one benchmark × configuration run — one cell of the paper's
/// tables.
struct EnduranceReport {
  std::string benchmark;
  PipelineConfig config;
  std::size_t instructions = 0;       ///< #I
  std::size_t rrams = 0;              ///< #R
  util::WriteStats writes;            ///< min / max / STDEV
  std::size_t gates_before_rewrite = 0;
  std::size_t gates_after_rewrite = 0;
  plim::Program program;              ///< for execution / trace replay
  /// Monte-Carlo lifetime distribution; present iff the config requests a
  /// fault scenario (`fault=` clause other than `none`).
  std::optional<fault::LifetimeDistribution> fault_sweep;
};

/// Rewrites `graph` per the config (the expensive step — cache the result
/// when sweeping compile-side options).
[[nodiscard]] mig::Mig prepare(const mig::Mig& graph, const PipelineConfig& config);

/// Compiles an already-rewritten graph.
[[nodiscard]] EnduranceReport compile_prepared(const mig::Mig& prepared,
                                               const PipelineConfig& config,
                                               std::string benchmark_name = {},
                                               std::size_t gates_before = 0);

/// prepare + compile in one call — a single-job convenience. Sweeps and
/// batches should go through flow::Runner (src/flow/runner.hpp), which adds
/// a thread pool and a content-addressed rewrite cache on top of these
/// primitives.
[[nodiscard]] EnduranceReport run_pipeline(const mig::Mig& graph,
                                           const PipelineConfig& config,
                                           std::string benchmark_name = {});

/// Paper's "impr." column: STDEV improvement of `ours` relative to `baseline`
/// in percent (negative when worse).
[[nodiscard]] double stdev_improvement(const EnduranceReport& baseline,
                                       const EnduranceReport& ours);

}  // namespace rlim::core
